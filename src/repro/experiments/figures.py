"""Data series for Figures 4-7 of the paper.

Each function returns plain dict/list series so callers can print them
(see :mod:`~repro.experiments.report`), plot them, or assert on their
shape (the benchmark suite does all three).
"""

from __future__ import annotations

from ..clustering.nsg import network_similarity_groups
from ..similarity.network import NetworkSimilarity
from ..synth.population import StudyPopulation
from ..analysis.label_stats import very_risky_fraction_by_group
from .study import StudyResult


def figure4(
    population: StudyPopulation, alpha: int = 10
) -> dict[int, int]:
    """Figure 4: stranger count per network similarity group.

    Aggregated over every owner in the population.  The paper's shape:
    heavily skewed toward low-similarity groups, with the top groups
    (NS > 0.6) empty.
    """
    measure = NetworkSimilarity()
    counts = {index: 0 for index in range(1, alpha + 1)}
    for owner in population.owners:
        similarities = {
            stranger: measure(population.graph, owner.user_id, stranger)
            for stranger in population.strangers_of(owner.user_id)
        }
        for group in network_similarity_groups(similarities, alpha):
            counts[group.index] += len(group.members)
    return counts


def _series_by_round(
    study: StudyResult, extract
) -> list[float]:
    """Average a per-round quantity across every pool of every owner."""
    totals: list[float] = []
    counts: list[int] = []
    for run in study.runs:
        for pool_result in run.result.pool_results:
            for record in pool_result.rounds:
                value = extract(record)
                if value is None:
                    continue
                index = record.round_index - 1
                while len(totals) <= index:
                    totals.append(0.0)
                    counts.append(0)
                totals[index] += value
                counts[index] += 1
    return [
        total / count if count else 0.0
        for total, count in zip(totals, counts)
    ]


def figure5(npp: StudyResult, nsp: StudyResult) -> dict[str, list[float]]:
    """Figure 5: RMSE per round for NPP versus NSP pools.

    The paper's shape: NPP's error drops faster and lower — profile
    sub-clustering groups strangers the owner judges alike.
    """
    return {
        "npp": _series_by_round(npp, lambda record: record.rmse),
        "nsp": _series_by_round(nsp, lambda record: record.rmse),
    }


def figure6(npp: StudyResult, nsp: StudyResult) -> dict[str, list[float]]:
    """Figure 6: average number of unstabilized labels per round.

    The paper's shape: NPP stabilizes with fewer moving labels per round
    than NSP.
    """
    return {
        "npp": _series_by_round(npp, lambda record: float(len(record.unstabilized))),
        "nsp": _series_by_round(nsp, lambda record: float(len(record.unstabilized))),
    }


def figure7(
    population: StudyPopulation, alpha: int = 10
) -> dict[int, float]:
    """Figure 7: percentage of *very risky* labels per similarity group.

    Uses the owners' ground-truth judgments (the paper uses owner-given
    labels; the simulated owner's ground truth is exactly what they would
    give).  The paper's shape: consistently decreasing with similarity.
    """
    measure = NetworkSimilarity()
    aggregate_very_risky = {index: 0 for index in range(1, alpha + 1)}
    aggregate_total = {index: 0 for index in range(1, alpha + 1)}
    for owner in population.owners:
        similarities = {
            stranger: measure(population.graph, owner.user_id, stranger)
            for stranger in population.strangers_of(owner.user_id)
        }
        groups = network_similarity_groups(similarities, alpha)
        fractions = very_risky_fraction_by_group(groups, owner.ground_truth)
        for group in groups:
            if group.index in fractions:
                aggregate_very_risky[group.index] += round(
                    fractions[group.index] * len(group.members)
                )
                aggregate_total[group.index] += len(group.members)
    return {
        index: aggregate_very_risky[index] / aggregate_total[index]
        for index in aggregate_total
        if aggregate_total[index] > 0
    }
