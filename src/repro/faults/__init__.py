"""Deterministic fault injection for robustness studies.

One shared vocabulary of fault archetypes — oracle timeout, oracle
abstention, transient fetch failure, dropped profile attributes, crawl
outage windows — produced by a seedable :class:`FaultInjector` and
absorbed by the :mod:`repro.resilience` layer.
"""

from .injector import (
    FaultInjector,
    FaultPlan,
    FlakyOracle,
    FlakyProfileSource,
    OutageWindow,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FlakyOracle",
    "FlakyProfileSource",
    "OutageWindow",
]
