"""Deterministic fault injection for robustness studies.

One shared vocabulary of fault archetypes — oracle timeout, oracle
abstention, transient fetch failure, dropped profile attributes, crawl
outage windows — produced by a seedable :class:`FaultInjector` and
absorbed by the :mod:`repro.resilience` layer.  The serving durability
layer has its own archetypes (fsync failure, slow disk, torn write,
crash-at-mutation) in :class:`ServiceFaultPlan` /
:class:`ServiceFaultInjector`, consumed by :mod:`repro.service.wal`.
"""

from .injector import (
    FaultInjector,
    FaultPlan,
    FlakyOracle,
    FlakyProfileSource,
    OutageWindow,
    ServiceFaultInjector,
    ServiceFaultPlan,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FlakyOracle",
    "FlakyProfileSource",
    "OutageWindow",
    "ServiceFaultInjector",
    "ServiceFaultPlan",
]
