"""Seedable fault injection for oracles, profile sources, and crawls.

Real OSN data arrives incrementally and partially: crawls stall during
outages, profile fetches fail or return half-empty profiles, and the
human oracle times out or abstains.  :class:`FaultInjector` reproduces
those archetypes deterministically so robustness experiments are exactly
replayable:

* **per-call faults** (oracle timeout/abstention, transient fetch
  failure) draw from one seeded stream — same seed and call order, same
  faults.  The stream's state can be captured and restored, which is how
  checkpoint/resume replays a killed run byte-for-byte;
* **per-user faults** (unreachable users, dropped profile attributes)
  are pure functions of ``(seed, user)``, so they agree across retries
  and across resumed runs regardless of call order;
* **crawl outages** shift discovery events past configured outage
  windows, modeling the "crawler was down for a week" archetype.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import (
    ConfigError,
    OracleAbstainError,
    OracleTimeoutError,
    TransientFetchError,
    UnreachableUserError,
)
from ..graph.profile import Profile
from ..graph.social_graph import SocialGraph
from ..learning.oracle import LabelOracle, LabelQuery, _validate_label
from ..synth.crawler import CrawlSimulation, DiscoveryEvent
from ..types import RiskLabel, UserId


@dataclass(frozen=True)
class OutageWindow:
    """An inclusive day range during which the crawler saw nothing."""

    start_day: int
    end_day: int

    def __post_init__(self) -> None:
        if self.start_day < 1 or self.end_day < self.start_day:
            raise ConfigError(
                f"invalid outage window [{self.start_day}, {self.end_day}]"
            )

    def covers(self, day: int) -> bool:
        """Whether ``day`` falls inside the outage."""
        return self.start_day <= day <= self.end_day


@dataclass(frozen=True)
class FaultPlan:
    """Rates and windows for every fault archetype.

    All rates are probabilities in ``[0, 1]``; the default plan injects
    nothing, so wrapping with an empty plan is a no-op.
    """

    oracle_timeout_rate: float = 0.0
    oracle_abstain_rate: float = 0.0
    fetch_failure_rate: float = 0.0
    unreachable_rate: float = 0.0
    attribute_drop_rate: float = 0.0
    outages: tuple[OutageWindow, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "oracle_timeout_rate",
            "oracle_abstain_rate",
            "fetch_failure_rate",
            "unreachable_rate",
            "attribute_drop_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must lie in [0, 1], got {value}")
        if self.oracle_timeout_rate + self.oracle_abstain_rate > 1.0:
            raise ConfigError(
                "oracle timeout and abstain rates must sum to at most 1"
            )

    @property
    def injects_anything(self) -> bool:
        """Whether any archetype is active."""
        return bool(
            self.oracle_timeout_rate
            or self.oracle_abstain_rate
            or self.fetch_failure_rate
            or self.unreachable_rate
            or self.attribute_drop_rate
            or self.outages
        )


class FaultInjector:
    """Deterministic source of the fault archetypes in a :class:`FaultPlan`.

    Parameters
    ----------
    plan:
        Which faults to produce, and how often.
    seed:
        Any int or string; derived streams are stable across processes
        (string seeding avoids Python's per-process hash randomization).
    """

    def __init__(self, plan: FaultPlan, seed: int | str = 0) -> None:
        self._plan = plan
        self._seed = str(seed)
        self._rng = random.Random(f"fault-injector:{self._seed}")

    @property
    def plan(self) -> FaultPlan:
        """The active fault plan."""
        return self._plan

    # ------------------------------------------------------------------
    # per-call stream (order-dependent; checkpointable)
    # ------------------------------------------------------------------
    def draw(self) -> float:
        """One uniform draw from the injector's fault stream."""
        return self._rng.random()

    def state(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the fault stream."""
        version, internal, gauss_next = self._rng.getstate()
        return {
            "version": version,
            "internal": list(internal),
            "gauss_next": gauss_next,
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`state`."""
        self._rng.setstate(
            (
                state["version"],
                tuple(state["internal"]),
                state["gauss_next"],
            )
        )

    # ------------------------------------------------------------------
    # per-user faults (order-independent)
    # ------------------------------------------------------------------
    def is_unreachable(self, user_id: UserId) -> bool:
        """Whether ``user_id`` is permanently gone under this plan."""
        if not self._plan.unreachable_rate:
            return False
        roll = random.Random(f"{self._seed}:unreachable:{user_id}").random()
        return roll < self._plan.unreachable_rate

    def degrade_profile(self, profile: Profile) -> Profile:
        """Drop attributes at ``attribute_drop_rate``, deterministically.

        The same user always loses the same attributes, so repeated
        fetches (retries, resumed runs) agree on what arrived.
        """
        if not self._plan.attribute_drop_rate:
            return profile
        rng = random.Random(f"{self._seed}:attrs:{profile.user_id}")
        kept = {
            attribute: value
            for attribute, value in sorted(profile.attributes.items())
            if rng.random() >= self._plan.attribute_drop_rate
        }
        if len(kept) == len(profile.attributes):
            return profile
        return Profile(
            user_id=profile.user_id,
            attributes=kept,
            privacy=dict(profile.privacy),
        )

    # ------------------------------------------------------------------
    # wrappers
    # ------------------------------------------------------------------
    def wrap_oracle(self, oracle: LabelOracle) -> "FlakyOracle":
        """Decorate ``oracle`` with timeout/abstention injection."""
        return FlakyOracle(oracle, self)

    def wrap_source(self, source=None) -> "FlakyProfileSource":
        """A profile source with transient failures and degraded data."""
        return FlakyProfileSource(self, source)

    def apply_outages(self, crawl: CrawlSimulation) -> CrawlSimulation:
        """Delay discovery events that fall inside outage windows.

        Each affected event moves to the first non-outage day after its
        window; events pushed past the crawl horizon are lost entirely
        (the deployment simply never saw them).
        """
        if not self._plan.outages:
            return crawl
        moved: list[DiscoveryEvent] = []
        for event in crawl.events:
            day = event.day
            while any(window.covers(day) for window in self._plan.outages):
                day = max(
                    window.end_day
                    for window in self._plan.outages
                    if window.covers(day)
                ) + 1
            if day > crawl.days:
                continue
            if day == event.day:
                moved.append(event)
            else:
                moved.append(
                    DiscoveryEvent(
                        day=day,
                        stranger=event.stranger,
                        via_friend=event.via_friend,
                    )
                )
        moved.sort(key=lambda event: event.day)  # stable: preserves order
        return CrawlSimulation(
            owner=crawl.owner,
            events=tuple(moved),
            days=crawl.days,
            total_strangers=crawl.total_strangers,
        )


class FlakyOracle:
    """Oracle decorator injecting timeouts and abstentions.

    Each query rolls once against the injector's stream: timeout first,
    abstention next, honest answer otherwise.  Retried queries roll again
    — a stranger who timed out may answer on the next attempt, and may
    also abstain.
    """

    def __init__(self, inner: LabelOracle, injector: FaultInjector) -> None:
        self._inner = inner
        self._injector = injector

    def label(self, query: LabelQuery) -> RiskLabel:
        """Answer, or raise the injected fault for this draw."""
        plan = self._injector.plan
        roll = self._injector.draw()
        if roll < plan.oracle_timeout_rate:
            raise OracleTimeoutError(
                f"oracle timed out for stranger {query.stranger}",
                stranger=query.stranger,
            )
        if roll < plan.oracle_timeout_rate + plan.oracle_abstain_rate:
            raise OracleAbstainError(
                f"owner abstained on stranger {query.stranger}",
                stranger=query.stranger,
            )
        return _validate_label(self._inner.label(query), query.stranger)

    def label_or_abstain(self, query: LabelQuery) -> RiskLabel | None:
        """Like :meth:`label`, mapping abstention to ``None``."""
        try:
            return self.label(query)
        except OracleAbstainError:
            return None


class FlakyProfileSource:
    """Profile source decorator: outages of the data layer.

    Unreachable users fail permanently; other fetches fail transiently at
    the plan's rate and otherwise return the (possibly degraded) profile.
    """

    def __init__(self, injector: FaultInjector, inner=None) -> None:
        self._injector = injector
        self._inner = inner

    def fetch_one(self, graph: SocialGraph, user_id: UserId) -> Profile:
        """Fetch one profile through the fault plan."""
        if self._injector.is_unreachable(user_id):
            raise UnreachableUserError(
                f"user {user_id} is gone (deleted or blocked)",
                user_id=user_id,
            )
        plan = self._injector.plan
        if plan.fetch_failure_rate and self._injector.draw() < plan.fetch_failure_rate:
            raise TransientFetchError(
                f"transient failure fetching user {user_id}", user_id=user_id
            )
        if self._inner is not None:
            profile = self._inner.fetch_one(graph, user_id)
        else:
            profile = graph.profile(user_id)
        return self._injector.degrade_profile(profile)


# ---------------------------------------------------------------------------
# service-level faults (durability layer)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceFaultPlan:
    """Disk- and crash-level faults aimed at the serving durability layer.

    Where :class:`FaultPlan` models a flaky *world* (oracle, fetches,
    crawler), this plan models a flaky *machine*: the write-ahead log's
    fsync can fail, the disk can be slow, a record can be torn mid-write
    by a power cut, and the whole process can die at a chosen mutation.
    The crash points are deterministic (Nth mutation, not a rate) so a
    chaos harness can kill the service at every interesting boundary and
    assert recovery byte-for-byte.
    """

    fsync_failure_rate: float = 0.0
    slow_disk_seconds: float = 0.0
    torn_write_at_mutation: int | None = None
    crash_at_mutation: int | None = None
    worker_crash_at_job: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.fsync_failure_rate <= 1.0:
            raise ConfigError(
                "fsync_failure_rate must lie in [0, 1], "
                f"got {self.fsync_failure_rate}"
            )
        if self.slow_disk_seconds < 0:
            raise ConfigError(
                f"slow_disk_seconds must be >= 0, got {self.slow_disk_seconds}"
            )
        for name in (
            "torn_write_at_mutation",
            "crash_at_mutation",
            "worker_crash_at_job",
        ):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigError(f"{name} must be >= 1, got {value}")

    @property
    def injects_anything(self) -> bool:
        """Whether any service-level fault is active."""
        return bool(
            self.fsync_failure_rate
            or self.slow_disk_seconds
            or self.torn_write_at_mutation is not None
            or self.crash_at_mutation is not None
            or self.worker_crash_at_job is not None
        )


class ServiceFaultInjector:
    """Deterministic producer of the faults in a :class:`ServiceFaultPlan`.

    The write-ahead log calls the three hooks at its commit boundaries:

    * :meth:`mangle_record` — may tear the Nth record (keep only half
      the encoded bytes) and arm an immediate crash, modeling a power
      cut mid-write;
    * :meth:`before_fsync` — may sleep (slow disk) and may raise
      :class:`OSError` (fsync failure) from a seeded stream;
    * :meth:`after_commit` — may kill the process right after the Nth
      mutation reached disk but *before* it was acknowledged.

    ``crash`` is injectable for in-process tests; the default
    ``os._exit`` is deliberate — a real crash must skip ``finally``
    blocks, atexit hooks, and buffered writes, exactly like ``kill -9``.
    """

    def __init__(
        self,
        plan: ServiceFaultPlan,
        seed: int | str = 0,
        *,
        sleeper: Callable[[float], None] = time.sleep,
        crash: Callable[[int], None] = os._exit,
    ) -> None:
        self._plan = plan
        self._rng = random.Random(f"service-fault-injector:{seed}")
        self._sleeper = sleeper
        self._crash = crash
        self._crash_pending = False

    @property
    def plan(self) -> ServiceFaultPlan:
        """The active service fault plan."""
        return self._plan

    def mangle_record(self, mutation_index: int, line: bytes) -> bytes:
        """Possibly tear the encoded record for this mutation."""
        if mutation_index == self._plan.torn_write_at_mutation:
            self._crash_pending = True
            return line[: max(1, len(line) // 2)]
        return line

    def after_write(self, mutation_index: int) -> None:
        """Crash now if :meth:`mangle_record` tore this record."""
        if self._crash_pending:
            self._crash(23)

    def before_fsync(self) -> None:
        """Model the disk: maybe slow, maybe failing to sync."""
        if self._plan.slow_disk_seconds:
            self._sleeper(self._plan.slow_disk_seconds)
        if (
            self._plan.fsync_failure_rate
            and self._rng.random() < self._plan.fsync_failure_rate
        ):
            raise OSError("injected fsync failure (disk said no)")

    def after_commit(self, mutation_index: int) -> None:
        """Crash after the Nth mutation is durable but unacknowledged."""
        if mutation_index == self._plan.crash_at_mutation:
            self._crash(24)

    def should_crash_worker(self, job_index: int) -> bool:
        """Whether the Nth dispatched scoring job should kill its worker.

        The process-pool backend asks this per dispatch (retries count as
        new dispatches), so a single planned crash exercises the
        retry-on-a-fresh-worker path deterministically.
        """
        return job_index == self._plan.worker_crash_at_job


__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FlakyOracle",
    "FlakyProfileSource",
    "OutageWindow",
    "ServiceFaultInjector",
    "ServiceFaultPlan",
]
