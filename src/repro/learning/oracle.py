"""Label oracles: how the learner asks the owner for risk judgments.

In the paper the oracle is a human answering the Section III-A question
through the Sight Chrome extension.  Here an oracle is anything satisfying
:class:`LabelOracle`; the library ships

* :class:`CallbackOracle` — wraps a plain function (this is how interactive
  frontends and the simulated owners plug in);
* :class:`ScriptedOracle` — answers from a fixed mapping (tests, replays);
* :class:`RecordingOracle` — decorator tracking every query/answer pair,
  used by the experiment harness to count owner effort.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Protocol

from ..errors import OracleAbstainError, OracleError
from ..types import RiskLabel, UserId


@dataclass(frozen=True)
class LabelQuery:
    """One request for an owner judgment.

    Carries exactly the information the Section III-A question presents:
    who the stranger is, how similar they are to the owner, and how much
    benefit their currently-visible profile provides.
    """

    stranger: UserId
    similarity: float
    benefit: float
    stranger_name: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.similarity <= 1.0:
            raise OracleError(
                f"similarity must lie in [0, 1], got {self.similarity}"
            )
        if not 0.0 <= self.benefit <= 1.0:
            raise OracleError(f"benefit must lie in [0, 1], got {self.benefit}")


class LabelOracle(Protocol):
    """Anything that can answer a :class:`LabelQuery` with a risk label."""

    def label(self, query: LabelQuery) -> RiskLabel:  # pragma: no cover
        """Answer one risk-label query."""
        ...


def label_or_abstain(oracle: LabelOracle, query: LabelQuery) -> RiskLabel | None:
    """Ask ``oracle``, mapping abstention to ``None``.

    Oracles exposing their own ``label_or_abstain`` (the resilient and
    fault-injecting wrappers) are used directly; plain oracles are asked
    via :meth:`~LabelOracle.label` with
    :class:`~repro.errors.OracleAbstainError` translated to ``None``.
    Transient failures and validation errors propagate either way.
    """
    method = getattr(oracle, "label_or_abstain", None)
    if method is not None:
        raw = method(query)
        if raw is None:
            return None
        return _validate_label(raw, query.stranger)
    try:
        return _validate_label(oracle.label(query), query.stranger)
    except OracleAbstainError:
        return None


def _validate_label(raw: object, stranger: UserId) -> RiskLabel:
    if isinstance(raw, RiskLabel):
        return raw
    if isinstance(raw, int) and raw in RiskLabel.values():
        return RiskLabel(raw)
    raise OracleError(
        f"oracle returned invalid label {raw!r} for stranger {stranger}; "
        f"valid labels are {RiskLabel.values()}"
    )


class CallbackOracle:
    """Adapts a ``query -> label`` function to the oracle protocol."""

    def __init__(self, callback: Callable[[LabelQuery], RiskLabel | int]) -> None:
        self._callback = callback

    def label(self, query: LabelQuery) -> RiskLabel:
        """Delegate to the callback, validating its answer."""
        return _validate_label(self._callback(query), query.stranger)


class ScriptedOracle:
    """Answers from a fixed stranger-to-label mapping.

    Parameters
    ----------
    answers:
        The script.
    default:
        Label for strangers outside the script; when omitted, unknown
        strangers raise :class:`~repro.errors.OracleError`.
    """

    def __init__(
        self,
        answers: Mapping[UserId, RiskLabel | int],
        default: RiskLabel | None = None,
    ) -> None:
        self._answers = {
            stranger: _validate_label(label, stranger)
            for stranger, label in answers.items()
        }
        self._default = default

    def label(self, query: LabelQuery) -> RiskLabel:
        """Answer from the script (or the default)."""
        if query.stranger in self._answers:
            return self._answers[query.stranger]
        if self._default is not None:
            return self._default
        raise OracleError(f"no scripted answer for stranger {query.stranger}")


@dataclass
class OracleStats:
    """Aggregate owner-effort numbers for one oracle.

    ``queries`` counts answered queries only; abstentions and failures
    are tallied separately so effort accounting stays honest under
    faults — the owner was still interrupted even when no label came
    back.
    """

    queries: int = 0
    abstentions: int = 0
    failures: int = 0
    label_counts: dict[int, int] = field(
        default_factory=lambda: {value: 0 for value in RiskLabel.values()}
    )

    def record(self, label: RiskLabel) -> None:
        """Count one answered query."""
        self.queries += 1
        self.label_counts[int(label)] += 1

    def record_abstention(self) -> None:
        """Count one query the owner declined to answer."""
        self.abstentions += 1

    def record_failure(self) -> None:
        """Count one query that errored (timeout, invalid answer, ...)."""
        self.failures += 1

    @property
    def interruptions(self) -> int:
        """Every time the owner was asked, answered or not."""
        return self.queries + self.abstentions + self.failures


class RecordingOracle:
    """Wraps another oracle and records every query/answer pair.

    Failed and abstained queries are recorded too (in ``abstained`` /
    ``failed`` and the stats), then re-raised, so wrapping a flaky oracle
    still counts the owner's full interruption load.
    """

    def __init__(self, inner: LabelOracle) -> None:
        self._inner = inner
        self._history: list[tuple[LabelQuery, RiskLabel]] = []
        self._abstained: list[LabelQuery] = []
        self._failed: list[tuple[LabelQuery, OracleError]] = []
        self._stats = OracleStats()

    @property
    def history(self) -> tuple[tuple[LabelQuery, RiskLabel], ...]:
        """Every (query, answer) pair in order."""
        return tuple(self._history)

    @property
    def abstained(self) -> tuple[LabelQuery, ...]:
        """Queries the owner declined, in order."""
        return tuple(self._abstained)

    @property
    def failed(self) -> tuple[tuple[LabelQuery, OracleError], ...]:
        """Queries that errored, with the error raised."""
        return tuple(self._failed)

    @property
    def stats(self) -> OracleStats:
        """Aggregate effort statistics."""
        return self._stats

    def label(self, query: LabelQuery) -> RiskLabel:
        """Answer via the wrapped oracle, recording the exchange."""
        try:
            answer = self._inner.label(query)
        except OracleAbstainError:
            self._abstained.append(query)
            self._stats.record_abstention()
            raise
        except OracleError as error:
            self._failed.append((query, error))
            self._stats.record_failure()
            raise
        answer = _validate_label(answer, query.stranger)
        self._history.append((query, answer))
        self._stats.record(answer)
        return answer

    def label_or_abstain(self, query: LabelQuery) -> RiskLabel | None:
        """Recorded variant of :func:`label_or_abstain`."""
        try:
            return self.label(query)
        except OracleAbstainError:
            return None
