"""The risk learning process (Section III) — the paper's core contribution.

The pipeline, per owner:

1. compute ``NS(o, s)`` and ``B(o, s)`` for every stranger;
2. build pools (Definition 3) — delegated to :mod:`repro.clustering`;
3. per pool, run rounds of active learning
   (:class:`~repro.learning.pool_learner.PoolLearner`): sample a few
   unlabeled strangers, ask the owner (:mod:`~repro.learning.oracle`),
   predict the rest (:mod:`repro.classifier`), measure accuracy
   (Definition 4) and stabilization (Definition 5), and stop per
   Section III-D;
4. aggregate everything into a
   :class:`~repro.learning.results.SessionResult`.

:class:`~repro.learning.session.RiskLearningSession` wires all of it.
"""

from .accuracy import exact_match_fraction, root_mean_square_error
from .incremental import IncrementalResult, continue_session, gathered_labels
from .interactive import TerminalOracle
from .mining import (
    AdaptiveSessionResult,
    mine_attribute_weights,
    mine_theta_weights,
    run_adaptive_session,
)
from .oracle import (
    CallbackOracle,
    LabelOracle,
    LabelQuery,
    OracleStats,
    RecordingOracle,
    ScriptedOracle,
    label_or_abstain,
)
from .pool_learner import PoolLearner
from .question import render_question
from .results import PoolResult, RoundRecord, SessionResult
from .sampling import RandomSampler, Sampler, UncertaintySampler
from .session import RiskLearningSession
from .stabilization import change_threshold, is_stabilized, unstabilized_strangers
from .stopping import StoppingCondition, StopReason

__all__ = [
    "AdaptiveSessionResult",
    "CallbackOracle",
    "IncrementalResult",
    "LabelOracle",
    "LabelQuery",
    "OracleStats",
    "continue_session",
    "exact_match_fraction",
    "gathered_labels",
    "mine_attribute_weights",
    "mine_theta_weights",
    "run_adaptive_session",
    "PoolLearner",
    "PoolResult",
    "RandomSampler",
    "RecordingOracle",
    "RiskLearningSession",
    "RoundRecord",
    "Sampler",
    "ScriptedOracle",
    "SessionResult",
    "StopReason",
    "StoppingCondition",
    "TerminalOracle",
    "UncertaintySampler",
    "change_threshold",
    "is_stabilized",
    "label_or_abstain",
    "render_question",
    "root_mean_square_error",
    "unstabilized_strangers",
]
