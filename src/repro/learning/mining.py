"""Parameter mining: learning the pipeline's knobs from owner labels.

The paper's conclusions propose "to develop techniques to mine from the
data most of the values for the parameters on which our learning process
relies", and Section IV-D itself observes that "for some benefit items it
is better to use system suggested weights".  This module implements that
direction:

* :func:`mine_attribute_weights` — Squeezer clustering weights from the
  owner's labels via Definition 6 (information gain ratio), replacing the
  fixed Table I cohort averages with owner-specific values;
* :func:`mine_theta_weights` — system-suggested benefit weights from the
  mined item importance (Table II's signal), which the Sight UI can offer
  instead of asking for thetas upfront;
* :func:`run_adaptive_session` — a two-phase session: a pilot run gathers
  labels with the default configuration, weights are mined from them, and
  the full run uses the owner-specific pooling.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Mapping

from ..analysis.importance import attribute_importance, benefit_importance
from ..benefits.model import ThetaWeights
from ..config import PipelineConfig, PoolingConfig
from ..errors import LearningError
from ..graph.profile import Profile
from ..graph.social_graph import SocialGraph
from ..graph.visibility import stranger_visibility_vector
from ..types import BenefitItem, ProfileAttribute, RiskLabel, UserId
from .oracle import LabelOracle
from .results import SessionResult
from .session import RiskLearningSession

#: Mined weights are floored here so that no clustering attribute is
#: silenced entirely by a small pilot sample.
_WEIGHT_FLOOR = 0.02


def mine_attribute_weights(
    profiles: Mapping[UserId, Profile],
    labels: Mapping[UserId, RiskLabel],
    attributes: tuple[ProfileAttribute, ...] = ProfileAttribute.clustering_attributes(),
) -> dict[ProfileAttribute, float]:
    """Owner-specific Squeezer weights from labeled strangers.

    The weight of each attribute is its normalized information gain ratio
    against the owner's labels (Definition 6), floored and re-normalized.

    Raises
    ------
    LearningError
        Without any labels there is nothing to mine from.
    """
    if not labels:
        raise LearningError("cannot mine attribute weights from zero labels")
    ranking = attribute_importance(profiles, labels, attributes)
    raw = {
        attribute: max(ranking.importances[attribute.value], _WEIGHT_FLOOR)
        for attribute in attributes
    }
    total = sum(raw.values())
    return {attribute: weight / total for attribute, weight in raw.items()}


def mine_theta_weights(
    visibility: Mapping[UserId, Mapping[BenefitItem, bool]],
    labels: Mapping[UserId, RiskLabel],
) -> ThetaWeights:
    """System-suggested benefit weights from mined item importance.

    Items whose visibility carries more of the owner's decision signal
    get proportionally larger thetas; an owner who never reacts to any
    item gets uniform suggestions.
    """
    if not labels:
        raise LearningError("cannot mine theta weights from zero labels")
    ranking = benefit_importance(visibility, labels)
    raw = {
        item: max(ranking.importances[item.value], _WEIGHT_FLOOR)
        for item in BenefitItem
    }
    peak = max(raw.values())
    # scale into (0, 1] so the most informative item gets full weight
    return ThetaWeights({item: weight / peak for item, weight in raw.items()})


@dataclass(frozen=True)
class AdaptiveSessionResult:
    """Outcome of a two-phase adaptive run."""

    pilot: SessionResult
    mined_weights: dict[ProfileAttribute, float]
    suggested_thetas: ThetaWeights
    final: SessionResult

    @property
    def total_labels(self) -> int:
        """Owner labels spent across both phases.

        The oracle is consistent, so strangers asked in the pilot answer
        identically in the final phase; a deployment would cache those
        answers, which is the number reported here (union of queried
        strangers, counted once).
        """
        pilot_asked = {
            stranger
            for pool in self.pilot.pool_results
            for stranger in pool.owner_labels
        }
        final_asked = {
            stranger
            for pool in self.final.pool_results
            for stranger in pool.owner_labels
        }
        return len(pilot_asked | final_asked)


def run_adaptive_session(
    graph: SocialGraph,
    owner: UserId,
    oracle: LabelOracle,
    config: PipelineConfig | None = None,
    pilot_fraction: float = 0.25,
    seed: int | None = None,
) -> AdaptiveSessionResult:
    """Two-phase risk learning with mined pooling weights.

    Phase 1 runs the standard session over a random ``pilot_fraction`` of
    the stranger set with the default (paper Table I) weights.  The
    labels it gathers are mined into owner-specific attribute weights and
    suggested thetas.  Phase 2 re-pools the *full* stranger set with the
    mined weights and runs to convergence.
    """
    if not 0.0 < pilot_fraction <= 1.0:
        raise LearningError(
            f"pilot_fraction must lie in (0, 1], got {pilot_fraction}"
        )
    base = config or PipelineConfig()

    pilot_session = RiskLearningSession(
        graph, owner, oracle, config=base, seed=seed
    )
    strangers = sorted(pilot_session.ego.strangers)
    import random as _random

    rng = _random.Random(seed)
    pilot_size = max(1, round(len(strangers) * pilot_fraction))
    pilot_set = frozenset(rng.sample(strangers, pilot_size))
    pilot_result = pilot_session.run(strangers=pilot_set)

    # mine from the pilot's owner-given labels only (predictions would
    # leak the classifier's own bias into the weights)
    pilot_labels: dict[UserId, RiskLabel] = {}
    for pool in pilot_result.pool_results:
        pilot_labels.update(pool.owner_labels)
    profiles = pilot_session.ego.stranger_profiles()
    mined = mine_attribute_weights(profiles, pilot_labels)
    visibility = {
        stranger: stranger_visibility_vector(graph, owner, stranger)
        for stranger in pilot_labels
    }
    thetas = mine_theta_weights(visibility, pilot_labels)

    adapted_pooling = dataclasses.replace(
        base.pooling,
        attributes=tuple(mined),
        attribute_weights=tuple(mined.values()),
    )
    adapted = dataclasses.replace(base, pooling=adapted_pooling)
    final_session = RiskLearningSession(
        graph, owner, oracle, config=adapted, seed=seed
    )
    final_result = final_session.run()
    return AdaptiveSessionResult(
        pilot=pilot_result,
        mined_weights=mined,
        suggested_thetas=thetas,
        final=final_result,
    )
