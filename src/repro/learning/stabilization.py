"""Classification change and stabilization (Definition 5).

Accuracy validation costs owner effort, so the learner also watches whether
predictions still *move* between rounds.  A pool is stabilized under
confidence ``c`` when no stranger's predicted label changed by at least the
tolerance

``threshold(c) = (Lmax - Lmin) * (100 - c) / 100``

between consecutive rounds.  At ``c = 100`` the tolerance is 0 and any
round with survivors counts as unstable — which, combined with the paper's
note, means the owner ends up labeling every stranger manually.  At the
cohort-average ``c ≈ 80`` the tolerance is 0.4: any whole-label flip
(|change| >= 1) destabilizes, while score drift below 0.4 does not.

The functions below operate on *continuous* label estimates (prediction
scores) so that sub-integer tolerances are meaningful; passing discrete
labels is equally valid and reproduces the strict-integer reading.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import LearningError
from ..types import RiskLabel, UserId


def change_threshold(confidence: float) -> float:
    """The classification-change tolerance for confidence ``c`` in [0, 100]."""
    if not 0.0 <= confidence <= 100.0:
        raise LearningError(
            f"confidence must lie in [0, 100], got {confidence}"
        )
    return RiskLabel.span() * (100.0 - confidence) / 100.0


def unstabilized_strangers(
    previous: Mapping[UserId, float],
    current: Mapping[UserId, float],
    confidence: float,
) -> frozenset[UserId]:
    """Strangers whose prediction changed by at least the tolerance.

    Only strangers present in *both* rounds are compared: a stranger
    labeled by the owner in between leaves the unlabeled set and is no
    longer subject to classification change.
    """
    threshold = change_threshold(confidence)
    common = previous.keys() & current.keys()
    return frozenset(
        stranger
        for stranger in common
        if abs(current[stranger] - previous[stranger]) >= threshold
    )


def is_stabilized(
    previous: Mapping[UserId, float],
    current: Mapping[UserId, float],
    confidence: float,
) -> bool:
    """Whether the pool is stabilized between two rounds (Definition 5)."""
    return not unstabilized_strangers(previous, current, confidence)
