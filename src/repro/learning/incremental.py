"""Incremental re-learning on a changed social graph.

The paper motivates active learning with the *dynamic* nature of the
owner's graph: "stranger connections might change very fast ... it is not
efficient to adopt a pre-defined and fixed training set.  Rather, it is
preferable to select the training set on the fly so that changes in the
social graph are immediately reflected" (Section III).

:func:`continue_session` is that workflow across snapshots: given the
result of a previous session and the current (grown or rewired) graph, it
re-runs the pipeline while

* reusing every owner label already gathered (the oracle — a consistent
  human — would repeat them anyway, so they seed the pools for free), and
* re-pooling from scratch, because new strangers and new edges can move
  existing strangers between similarity groups.

The savings are measured by :class:`IncrementalResult`: new oracle
queries versus what a cold re-run would have cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.social_graph import SocialGraph
from ..types import RiskLabel, UserId
from .oracle import LabelOracle, RecordingOracle
from .results import SessionResult
from .session import RiskLearningSession


def gathered_labels(result: SessionResult) -> dict[UserId, RiskLabel]:
    """Every owner-given label in a session result."""
    labels: dict[UserId, RiskLabel] = {}
    for pool in result.pool_results:
        labels.update(pool.owner_labels)
    return labels


@dataclass(frozen=True)
class IncrementalResult:
    """Outcome of an incremental update."""

    result: SessionResult
    reused_labels: int
    new_queries: int

    @property
    def total_known_labels(self) -> int:
        """Labels available after the update (reused + new)."""
        return self.reused_labels + self.new_queries

    @property
    def savings_fraction(self) -> float:
        """Fraction of the update's labels that came for free.

        The owner-effort saving a warm re-score achieves over a cold run;
        the serving layer reports it per request and in ``/metrics``.
        """
        total = self.total_known_labels
        if total == 0:
            return 0.0
        return self.reused_labels / total


def continue_session(
    graph: SocialGraph,
    owner: UserId,
    oracle: LabelOracle,
    previous: SessionResult,
    seed: int | None = None,
    strangers: frozenset[UserId] | set[UserId] | None = None,
    **session_kwargs,
) -> IncrementalResult:
    """Update risk labels after the owner's graph changed.

    Parameters
    ----------
    graph:
        The *current* social graph (new strangers, new edges).
    owner, oracle:
        As in :class:`~repro.learning.session.RiskLearningSession`.
    previous:
        The result of the last session; its owner labels are reused for
        strangers that are still 2-hop contacts.
    strangers:
        Optional restriction to a subset of the current stranger set —
        e.g. the prefix a crawler has discovered so far.
    session_kwargs:
        Forwarded to the session constructor (config, classifier, ...).

    Returns
    -------
    IncrementalResult
        The fresh session result plus the query-savings accounting.
    """
    recorder = RecordingOracle(oracle)
    session = RiskLearningSession(
        graph, owner, recorder, seed=seed, **session_kwargs
    )
    target = session.ego.strangers if strangers is None else frozenset(strangers)
    old_labels = gathered_labels(previous)
    # strangers that left the 2-hop set (e.g. became friends) drop out
    still_strangers = {
        stranger: label
        for stranger, label in old_labels.items()
        if stranger in target and stranger in session.ego.strangers
    }
    result = session.run(strangers=target, initial_labels=still_strangers)
    return IncrementalResult(
        result=result,
        reused_labels=len(still_strangers),
        new_queries=recorder.stats.queries,
    )
