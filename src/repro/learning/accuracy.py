"""Prediction accuracy: the RMSE of Definition 4.

In each round the learner asks the owner to label strangers whose labels
were *predicted* in the previous round; the root mean square error between
those predictions and the owner's answers estimates accuracy without a
held-out set.  With labels in [1, 3] the error lives in [0, 2]; the paper's
stopping rule demands RMSE < 0.5.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..errors import LearningError
from ..types import RiskLabel


def root_mean_square_error(
    pairs: Iterable[tuple[RiskLabel | int | float, RiskLabel | int | float]],
) -> float:
    """RMSE over ``(predicted, owner)`` pairs (Definition 4).

    Raises
    ------
    LearningError
        On an empty pair set — an RMSE of "nothing" would silently satisfy
        any threshold.
    """
    total = 0.0
    count = 0
    for predicted, actual in pairs:
        difference = float(actual) - float(predicted)
        total += difference * difference
        count += 1
    if count == 0:
        raise LearningError("RMSE of an empty validation set is undefined")
    return math.sqrt(total / count)


def exact_match_fraction(
    pairs: Iterable[tuple[RiskLabel | int, RiskLabel | int]],
) -> float:
    """Fraction of predictions that exactly match the owner label.

    This is the paper's headline metric ("83,36% of predicted labels
    exactly match the owner labels").  Returns 0.0 on an empty set.
    """
    matches = 0
    count = 0
    for predicted, actual in pairs:
        if int(predicted) == int(actual):
            matches += 1
        count += 1
    if count == 0:
        return 0.0
    return matches / count
