"""The per-pool active-learning loop (Sections III-B to III-D).

One :class:`PoolLearner` drives one pool ``P`` of Definition 3:

* each round it samples ``labels_per_round`` unlabeled strangers and asks
  the oracle (the owner) for their risk labels;
* strangers that already had a prediction from the previous round yield
  validation pairs, giving the round's RMSE (Definition 4);
* the classifier then re-predicts every remaining unlabeled stranger;
* classification change against the previous round's predictions feeds the
  stabilization criterion (Definition 5);
* the loop stops when the combined condition of Section III-D holds, the
  pool is exhausted, or the round budget runs out.
"""

from __future__ import annotations

import random
from typing import Mapping

from ..classifier.base import PoolClassifier, Prediction
from ..config import LearningConfig
from ..errors import (
    CircuitOpenError,
    DeadlineExceededError,
    LearningError,
    OracleTimeoutError,
    RetryExhaustedError,
)
from ..types import RiskLabel, UserId
from .accuracy import root_mean_square_error
from .oracle import LabelOracle, LabelQuery, label_or_abstain
from .results import PoolResult, RoundRecord
from .sampling import RandomSampler, Sampler
from .stabilization import unstabilized_strangers
from .stopping import StoppingCondition, StopReason


class PoolLearner:
    """Active learner for one stranger pool.

    Parameters
    ----------
    pool_id, nsg_index:
        Identity of the pool (propagated into the result).
    members:
        The pool's strangers.
    classifier:
        A :class:`~repro.classifier.base.PoolClassifier` bound to the
        pool's similarity graph.
    oracle:
        The owner (or a simulation thereof).
    config:
        Loop parameters (labels per round, thresholds, confidence, caps).
    similarities, benefits:
        Per-stranger ``NS`` and ``B`` values shown to the owner in each
        query; strangers missing from either mapping default to 0.
    names:
        Optional display names for queries.
    sampler:
        In-pool sampling strategy; defaults to the paper's random sampler.
    rng:
        Source of randomness (seed it for reproducible runs).
    initial_labels:
        Owner labels already known for some members (e.g. from a previous
        session on a smaller stranger set).  They seed the labeled set
        without any oracle queries — the warm start of incremental
        re-learning.
    """

    def __init__(
        self,
        pool_id: str,
        nsg_index: int,
        members: tuple[UserId, ...],
        classifier: PoolClassifier,
        oracle: LabelOracle,
        config: LearningConfig | None = None,
        similarities: Mapping[UserId, float] | None = None,
        benefits: Mapping[UserId, float] | None = None,
        names: Mapping[UserId, str] | None = None,
        sampler: Sampler | None = None,
        rng: random.Random | None = None,
        initial_labels: Mapping[UserId, RiskLabel] | None = None,
    ) -> None:
        if not members:
            raise LearningError(f"pool {pool_id} has no members")
        self._pool_id = pool_id
        self._nsg_index = nsg_index
        self._members = tuple(members)
        self._classifier = classifier
        self._oracle = oracle
        self._config = config or LearningConfig()
        self._similarities = dict(similarities or {})
        self._benefits = dict(benefits or {})
        self._names = dict(names or {})
        self._sampler = sampler or RandomSampler()
        self._rng = rng or random.Random(self._config.seed)
        member_set = set(self._members)
        self._initial_labels = {
            stranger: label
            for stranger, label in (initial_labels or {}).items()
            if stranger in member_set
        }

    def run(self) -> PoolResult:
        """Execute the loop until a stopping condition fires."""
        unlabeled: set[UserId] = set(self._members) - set(self._initial_labels)
        labeled: dict[UserId, RiskLabel] = dict(self._initial_labels)
        unreachable: set[UserId] = set()
        previous: dict[UserId, Prediction] = {}
        if labeled and not unlabeled:
            # everything already known: nothing to learn
            return PoolResult(
                pool_id=self._pool_id,
                nsg_index=self._nsg_index,
                rounds=(),
                owner_labels=labeled,
                predicted_labels={},
                stop_reason=StopReason.EXHAUSTED,
            )
        rounds: list[RoundRecord] = []
        stopping = StoppingCondition(self._config)
        stop_reason = StopReason.MAX_ROUNDS

        for round_index in range(1, self._config.max_rounds + 1):
            queried, answers, abstained, newly_unreachable = self._query_round(
                unlabeled, previous
            )
            unreachable.update(newly_unreachable)
            validation_pairs = tuple(
                (int(previous[stranger].label), int(answers[stranger]))
                for stranger in queried
                if stranger in previous
            )
            rmse = (
                root_mean_square_error(validation_pairs)
                if validation_pairs
                else None
            )
            labeled.update(answers)
            unlabeled.difference_update(queried)
            unlabeled.difference_update(newly_unreachable)

            if not unlabeled:
                rounds.append(
                    RoundRecord(
                        round_index=round_index,
                        queried=tuple(queried),
                        answers=answers,
                        validation_pairs=validation_pairs,
                        rmse=rmse,
                        predicted_scores={},
                        predicted_labels={},
                        unstabilized=frozenset(),
                        stabilized=True,
                        abstained=abstained,
                    )
                )
                stop_reason = StopReason.EXHAUSTED
                # Owner-labeled strangers need no prediction; unreachable
                # ones keep their last prediction (degraded, not absent).
                previous = {
                    stranger: prediction
                    for stranger, prediction in previous.items()
                    if stranger in unreachable
                }
                break

            if not labeled:
                # Every query so far abstained or failed: there is nothing
                # to fit yet.  Record the barren round and sample again.
                rounds.append(
                    RoundRecord(
                        round_index=round_index,
                        queried=tuple(queried),
                        answers=answers,
                        validation_pairs=validation_pairs,
                        rmse=rmse,
                        predicted_scores={},
                        predicted_labels={},
                        unstabilized=frozenset(),
                        stabilized=False,
                        abstained=abstained,
                    )
                )
                continue

            predictions = self._classifier.predict(labeled)
            current_scores = {
                stranger: prediction.score
                for stranger, prediction in predictions.items()
            }
            if previous:
                previous_scores = {
                    stranger: prediction.score
                    for stranger, prediction in previous.items()
                }
                unstable = unstabilized_strangers(
                    previous_scores, current_scores, self._config.confidence
                )
                stabilized = not unstable
            else:
                # First prediction round: every label is brand new, so the
                # pool cannot be considered stable yet.
                unstable = frozenset(current_scores)
                stabilized = False

            should_stop = stopping.observe(rmse, stabilized)
            rounds.append(
                RoundRecord(
                    round_index=round_index,
                    queried=tuple(queried),
                    answers=answers,
                    validation_pairs=validation_pairs,
                    rmse=rmse,
                    predicted_scores=current_scores,
                    predicted_labels={
                        stranger: prediction.label
                        for stranger, prediction in predictions.items()
                    },
                    unstabilized=unstable,
                    stabilized=stabilized,
                    abstained=abstained,
                )
            )
            previous = predictions
            if should_stop:
                stop_reason = StopReason.CONVERGED
                break

        predicted_labels = {
            stranger: prediction.label
            for stranger, prediction in previous.items()
        }
        return PoolResult(
            pool_id=self._pool_id,
            nsg_index=self._nsg_index,
            rounds=tuple(rounds),
            owner_labels=labeled,
            predicted_labels=predicted_labels,
            stop_reason=stop_reason,
            unreachable=frozenset(unreachable),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _query_round(
        self,
        unlabeled: set[UserId],
        previous: Mapping[UserId, Prediction],
    ) -> tuple[tuple[UserId, ...], dict[UserId, RiskLabel], tuple[UserId, ...], set[UserId]]:
        """Gather one round's answers, resampling around faults.

        Abstentions and dead strangers do not consume the round's label
        quota: replacements are drawn until the quota is met or the pool
        runs out of candidates.  Abstainers stay unlabeled (the owner may
        answer in a later round); strangers whose oracle path failed for
        good are dropped from the loop and reported as unreachable.
        With a fault-free oracle this reduces to the paper's single
        random draw per round.
        """
        answered: list[UserId] = []
        answers: dict[UserId, RiskLabel] = {}
        abstained: list[UserId] = []
        unreachable: set[UserId] = set()
        candidates = set(unlabeled)
        quota = self._config.labels_per_round
        while candidates and len(answered) < quota:
            batch = self._sampler.select(
                sorted(candidates),
                quota - len(answered),
                self._rng,
                previous,
            )
            if not batch:
                break
            for stranger in batch:
                candidates.discard(stranger)
                outcome, label = self._ask(stranger)
                if outcome == "ok":
                    answered.append(stranger)
                    answers[stranger] = label
                elif outcome == "abstain":
                    abstained.append(stranger)
                else:
                    unreachable.add(stranger)
        return tuple(answered), answers, tuple(abstained), unreachable

    def _ask(self, stranger: UserId) -> tuple[str, RiskLabel | None]:
        """One oracle exchange: ``("ok" | "abstain" | "unreachable", label)``.

        Permanent failures of the resilience layer (retries exhausted,
        circuit open, deadline blown) and unretried timeouts mark the
        stranger unreachable; wrap the oracle in
        :class:`~repro.resilience.ResilientOracle` to absorb transient
        timeouts before they land here.
        """
        query = LabelQuery(
            stranger=stranger,
            similarity=self._similarities.get(stranger, 0.0),
            benefit=self._benefits.get(stranger, 0.0),
            stranger_name=self._names.get(stranger),
        )
        try:
            label = label_or_abstain(self._oracle, query)
        except (
            RetryExhaustedError,
            CircuitOpenError,
            DeadlineExceededError,
            OracleTimeoutError,
        ):
            return "unreachable", None
        if label is None:
            return "abstain", None
        return "ok", label
