"""Result records produced by the learning loops.

Three layers, mirroring the pipeline:

* :class:`RoundRecord` — one active-learning round in one pool;
* :class:`PoolResult` — a finished pool: its rounds, final labels for every
  member, and why the loop stopped;
* :class:`SessionResult` — one owner's full run across all pools, with the
  aggregates the paper reports (validation accuracy, rounds to
  stabilization, labels spent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..errors import LearningError
from ..types import RiskLabel, UserId
from .accuracy import exact_match_fraction, root_mean_square_error
from .stopping import StopReason


@dataclass(frozen=True)
class RoundRecord:
    """Everything observed during one round of one pool's loop.

    Attributes
    ----------
    round_index:
        1-based round counter.
    queried:
        Strangers the owner was asked about this round.
    answers:
        The owner's labels for ``queried``.
    validation_pairs:
        ``(predicted_last_round, owner_label)`` pairs for strangers that
        had a prediction before being queried — the material of
        Definition 4.
    rmse:
        RMSE over ``validation_pairs`` (``None`` when there were none).
    predicted_scores:
        Continuous label estimates for strangers still unlabeled after
        this round.
    predicted_labels:
        Discrete labels corresponding to ``predicted_scores``.
    unstabilized:
        Strangers whose prediction moved by at least the confidence
        tolerance since the previous round.
    stabilized:
        Whether this round showed no classification change.
    abstained:
        Strangers the owner was asked about but declined to label this
        round (they stay unlabeled and may be re-sampled later).
    """

    round_index: int
    queried: tuple[UserId, ...]
    answers: Mapping[UserId, RiskLabel]
    validation_pairs: tuple[tuple[int, int], ...]
    rmse: float | None
    predicted_scores: Mapping[UserId, float]
    predicted_labels: Mapping[UserId, RiskLabel]
    unstabilized: frozenset[UserId]
    stabilized: bool
    abstained: tuple[UserId, ...] = ()


@dataclass(frozen=True)
class PoolResult:
    """Outcome of one pool's active-learning loop.

    ``unreachable`` flags members the pipeline could not serve — their
    profile never arrived, or every oracle attempt for them failed for
    good.  They may still carry a predicted label (graceful degradation)
    but are reported so downstream consumers know the result is partial.
    ``profile_coverage`` is the fraction of (member, attribute) cells that
    were present when the pool's similarity graph was built (``None``
    when nobody tracked it).
    """

    pool_id: str
    nsg_index: int
    rounds: tuple[RoundRecord, ...]
    owner_labels: Mapping[UserId, RiskLabel]
    predicted_labels: Mapping[UserId, RiskLabel]
    stop_reason: StopReason
    unreachable: frozenset[UserId] = frozenset()
    profile_coverage: float | None = None

    @property
    def num_rounds(self) -> int:
        """Rounds executed."""
        return len(self.rounds)

    @property
    def abstention_count(self) -> int:
        """Owner abstentions across all rounds."""
        return sum(len(record.abstained) for record in self.rounds)

    @property
    def degraded(self) -> bool:
        """Whether faults left this pool's result partial."""
        return bool(self.unreachable) or self.abstention_count > 0

    @property
    def labels_requested(self) -> int:
        """Owner labels spent on this pool."""
        return len(self.owner_labels)

    @property
    def final_labels(self) -> dict[UserId, RiskLabel]:
        """Label for *every* pool member: owner-given where available,
        predicted otherwise."""
        labels = dict(self.predicted_labels)
        labels.update(self.owner_labels)
        return labels

    def validation_pairs(self) -> list[tuple[int, int]]:
        """All (predicted, owner) validation pairs across rounds."""
        pairs: list[tuple[int, int]] = []
        for record in self.rounds:
            pairs.extend(record.validation_pairs)
        return pairs

    @property
    def converged(self) -> bool:
        """Whether the Section III-D criteria were met."""
        return self.stop_reason is StopReason.CONVERGED


@dataclass(frozen=True)
class SessionResult:
    """One owner's full risk-learning run."""

    owner: UserId
    pool_results: tuple[PoolResult, ...]
    confidence: float

    def __post_init__(self) -> None:
        if not self.pool_results:
            raise LearningError("a session must contain at least one pool result")

    @property
    def num_pools(self) -> int:
        """Pools the stranger set was split into."""
        return len(self.pool_results)

    @property
    def num_strangers(self) -> int:
        """Strangers covered across all pools."""
        return sum(
            len(result.final_labels) for result in self.pool_results
        )

    @property
    def labels_requested(self) -> int:
        """Total owner labels spent."""
        return sum(result.labels_requested for result in self.pool_results)

    def final_labels(self) -> dict[UserId, RiskLabel]:
        """Risk label for every stranger of the owner."""
        labels: dict[UserId, RiskLabel] = {}
        for result in self.pool_results:
            labels.update(result.final_labels)
        return labels

    def validation_pairs(self) -> list[tuple[int, int]]:
        """All (predicted, owner) validation pairs across all pools."""
        pairs: list[tuple[int, int]] = []
        for result in self.pool_results:
            pairs.extend(result.validation_pairs())
        return pairs

    @property
    def validation_rmse(self) -> float | None:
        """Session-level RMSE over every validation pair."""
        pairs = self.validation_pairs()
        if not pairs:
            return None
        return root_mean_square_error(pairs)

    @property
    def exact_match_accuracy(self) -> float | None:
        """Fraction of validated predictions matching the owner exactly.

        This is the paper's headline metric, measured the paper's way:
        only predictions later validated by an owner label count.
        """
        pairs = self.validation_pairs()
        if not pairs:
            return None
        return exact_match_fraction(pairs)

    @property
    def mean_rounds_to_stop(self) -> float:
        """Average rounds per pool (the paper reports ~3.29)."""
        return sum(result.num_rounds for result in self.pool_results) / len(
            self.pool_results
        )

    @property
    def converged_fraction(self) -> float:
        """Fraction of pools that met the Section III-D criteria."""
        converged = sum(1 for result in self.pool_results if result.converged)
        return converged / len(self.pool_results)

    # ------------------------------------------------------------------
    # degradation accounting
    # ------------------------------------------------------------------
    @property
    def unreachable_strangers(self) -> frozenset[UserId]:
        """Strangers no pool could fully serve (fetch or oracle dead)."""
        unreachable: set[UserId] = set()
        for result in self.pool_results:
            unreachable.update(result.unreachable)
        return frozenset(unreachable)

    @property
    def abstentions(self) -> int:
        """Owner abstentions across the whole session."""
        return sum(result.abstention_count for result in self.pool_results)

    @property
    def degraded(self) -> bool:
        """Whether any pool's result is partial due to faults."""
        return any(result.degraded for result in self.pool_results)

    @property
    def degraded_pools(self) -> tuple[str, ...]:
        """Ids of pools whose results are partial."""
        return tuple(
            result.pool_id for result in self.pool_results if result.degraded
        )
