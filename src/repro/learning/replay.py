"""Delta-proportional session replay: cold-identical results at warm cost.

The paper's motivation for active learning is the *dynamic* graph —
"stranger connections might change very fast ... it is preferable to
select the training set on the fly" (Section III).  This module is the
serving-layer answer: given the pipeline state of a previous run and the
dirty delta of the mutations since
(:class:`~repro.service.dirty.DirtyDelta`), :func:`replay_session`
reproduces — byte for byte — what a **cold** session on the current
graph would compute, while only paying for what the delta touched:

* ``NS(o, s)`` is recomputed only for dirty strangers (the batch bitset
  kernel over the touched rows); every other similarity is replayed
  from the state.
* Benefits are recomputed only for strangers whose profile changed
  (``B(o, s)`` reads nothing but the stranger's own profile).
* NS binning always re-runs (linear, cheap), but Squeezer re-clusters
  only the groups whose membership or member profiles moved
  (:func:`~repro.clustering.pools.build_pools_cached`).
* Each pool's learning loop re-runs only when its *inputs* changed.  A
  pool's outcome is a pure function of its fingerprint — members, their
  similarities, benefits, and profiles — plus the session RNG state at
  the moment the pool starts (the only RNG consumer is in-pool
  sampling, and the oracle is a deterministic ground-truth lookup).  A
  recorded pool whose fingerprint and entry RNG state match is replayed
  verbatim and the RNG is fast-forwarded to its recorded exit state, so
  every *subsequent* pool — rerun or not — sees exactly the stream a
  full run would have produced.
* Re-run pools with unchanged profiles reuse their similarity graph and
  harmonic classifier (and thereby its splu factor cache) through the
  session's classifier memo.

Because reuse is gated on *recomputed-input equality*, not on the dirty
sets alone, conservative (superset) deltas cost extra recomputation but
can never change the result — the substrate of the engine's
digest-equivalence guarantee, property-tested by the stateful
mutate/score suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..clustering.pools import (
    PooledGroup,
    StrangerPool,
    build_network_only_pools,
    build_pools_cached,
)
from ..errors import LearningError
from ..graph.social_graph import SocialGraph
from ..similarity.network import NetworkSimilarity
from ..types import UserId
from .oracle import LabelOracle, RecordingOracle
from .results import PoolResult, SessionResult
from .session import RiskLearningSession

#: Session-constructor kwargs that make a replay unsound: a fetcher can
#: drop members nondeterministically w.r.t. our fingerprints, a custom
#: NS() or edge-similarity wrapper breaks the dirty-set derivation
#: (which is exact only for the default structural measure), and a
#: custom sampler may consume randomness we do not checkpoint.
REPLAY_UNSAFE_KWARGS = (
    "fetcher",
    "network_similarity",
    "edge_similarity_wrapper",
    "sampler",
)


def replay_supported(session_kwargs: Mapping[str, Any]) -> bool:
    """Whether a session built with these kwargs may be replayed."""
    return all(not session_kwargs.get(key) for key in REPLAY_UNSAFE_KWARGS)


@dataclass
class PoolRecord:
    """One completed pool: its inputs, outcome, and RNG bracket."""

    fingerprint: tuple
    result: PoolResult
    rng_before: tuple
    rng_after: tuple


@dataclass
class SessionReplayState:
    """Everything a later replay can reuse from one session run."""

    similarities: dict[UserId, float] = field(default_factory=dict)
    benefits: dict[UserId, float] = field(default_factory=dict)
    groups: dict[int, PooledGroup] = field(default_factory=dict)
    pools: dict[str, PoolRecord] = field(default_factory=dict)
    #: ``pool_id -> (profiles, classifier)`` — the session-level memo
    #: carrying the similarity graphs and splu factor caches across runs.
    classifiers: dict[str, tuple] = field(default_factory=dict)


@dataclass
class ReplayStats:
    """Delta accounting of one replay, for ``/metrics``."""

    full_run: bool = False
    ns_reused: int = 0
    ns_recomputed: int = 0
    benefits_reused: int = 0
    benefits_recomputed: int = 0
    groups_reused: int = 0
    groups_total: int = 0
    pools_reused: int = 0
    pools_rerun: int = 0

    def to_dict(self) -> dict[str, int | bool]:
        """The JSON-shaped form merged into the ``incremental`` block."""
        return {
            "full_run": self.full_run,
            "ns_reused": self.ns_reused,
            "ns_recomputed": self.ns_recomputed,
            "benefits_reused": self.benefits_reused,
            "benefits_recomputed": self.benefits_recomputed,
            "groups_reused": self.groups_reused,
            "groups_total": self.groups_total,
            "pools_reused": self.pools_reused,
            "pools_rerun": self.pools_rerun,
        }


@dataclass
class ReplayOutcome:
    """A replayed session: the cold-identical result plus bookkeeping."""

    result: SessionResult
    state: SessionReplayState
    stats: ReplayStats
    reused_labels: int
    new_queries: int


def replay_session(
    graph: SocialGraph,
    owner: UserId,
    oracle: LabelOracle,
    seed: int | None,
    session_kwargs: Mapping[str, Any],
    state: SessionReplayState | None,
    dirty,
) -> ReplayOutcome:
    """Run (or incrementally replay) one owner's session.

    ``state`` is the previous run's :class:`SessionReplayState` (``None``
    runs everything and just *builds* state); ``dirty`` is the merged
    :class:`~repro.service.dirty.DirtyDelta` covering every mutation
    since that state was recorded, or ``None`` when the gap is unknown
    (treated as full).  The returned result is byte-identical to
    ``RiskLearningSession(...).run()`` on the current graph.

    Raises
    ------
    LearningError
        As the plain session would (e.g. the owner has no strangers),
        or when ``session_kwargs`` contain replay-unsafe hooks.
    """
    if not replay_supported(session_kwargs):
        raise LearningError(
            "session kwargs contain replay-unsafe hooks; "
            f"unsupported: {REPLAY_UNSAFE_KWARGS}"
        )
    recorder = RecordingOracle(oracle)
    prior = state or SessionReplayState()
    session = RiskLearningSession(
        graph,
        owner,
        recorder,
        seed=seed,
        classifier_cache=prior.classifiers,
        **session_kwargs,
    )
    strangers = session.ego.strangers
    if not strangers:
        raise LearningError(
            f"owner {owner} has no strangers; nothing to learn"
        )
    stats = ReplayStats()
    full = state is None or dirty is None or dirty.full

    # --- network similarities: recompute only the dirty rows ----------
    if full:
        dirty_ns = strangers
    else:
        dirty_ns = {
            s for s in strangers
            if s in dirty.ns or s not in prior.similarities
        }
    similarities = {
        s: prior.similarities[s] for s in strangers if s not in dirty_ns
    }
    if dirty_ns:
        # Batch path over just the touched strangers; value-for-value
        # identical to the full batch a cold run computes.
        measure = NetworkSimilarity(session.config.network_similarity)
        similarities.update(
            measure.for_strangers(graph, owner, frozenset(dirty_ns))
        )
    stats.ns_recomputed = len(dirty_ns)
    stats.ns_reused = len(strangers) - len(dirty_ns)

    # --- benefits: B(o, s) reads only s's profile ---------------------
    if full:
        dirty_benefit = strangers
    else:
        dirty_benefit = {
            s for s in strangers
            if s in dirty.profiles or s not in prior.benefits
        }
    benefits = {
        s: prior.benefits[s] for s in strangers if s not in dirty_benefit
    }
    if dirty_benefit:
        benefits.update(
            session.benefit_model.for_strangers(
                graph, owner, frozenset(dirty_benefit)
            )
        )
    stats.benefits_recomputed = len(dirty_benefit)
    stats.benefits_reused = len(strangers) - len(dirty_benefit)

    # --- pooling: re-bin everything, re-Squeeze only moved groups -----
    profiles = session.ego.stranger_profiles()
    if session.pooling == "nsp":
        pools = build_network_only_pools(similarities, session.config.pooling)
        new_groups: dict[int, PooledGroup] = {}
        stats.groups_total = len(pools)
    else:
        pools, new_groups, reused_groups = build_pools_cached(
            similarities,
            profiles,
            session.config.pooling,
            None if state is None else prior.groups,
        )
        stats.groups_reused = reused_groups
        stats.groups_total = len(new_groups)

    # --- pool loops: replay matching records, re-run the rest ---------
    rng = random.Random(session.seed)
    pool_results: list[PoolResult] = []
    new_pools: dict[str, PoolRecord] = {}
    reused_labels = 0
    for pool in pools:
        fingerprint = _pool_fingerprint(pool, similarities, benefits, profiles)
        rng_before = rng.getstate()
        record = prior.pools.get(pool.pool_id) if state is not None else None
        if (
            record is not None
            and record.fingerprint == fingerprint
            and record.rng_before == rng_before
        ):
            pool_results.append(record.result)
            new_pools[pool.pool_id] = record
            rng.setstate(record.rng_after)
            reused_labels += len(record.result.owner_labels)
            stats.pools_reused += 1
            continue
        result = session.run_pool(pool, similarities, benefits, rng)
        new_pools[pool.pool_id] = PoolRecord(
            fingerprint=fingerprint,
            result=result,
            rng_before=rng_before,
            rng_after=rng.getstate(),
        )
        pool_results.append(result)
        stats.pools_rerun += 1
    stats.full_run = stats.pools_reused == 0

    result = SessionResult(
        owner=owner,
        pool_results=tuple(pool_results),
        confidence=session.config.learning.confidence,
    )
    next_state = SessionReplayState(
        similarities=similarities,
        benefits=benefits,
        groups=new_groups,
        pools=new_pools,
        classifiers=prior.classifiers,
    )
    return ReplayOutcome(
        result=result,
        state=next_state,
        stats=stats,
        reused_labels=reused_labels,
        new_queries=recorder.stats.queries,
    )


def _pool_fingerprint(
    pool: StrangerPool,
    similarities: Mapping[UserId, float],
    benefits: Mapping[UserId, float],
    profiles: Mapping[UserId, Any],
) -> tuple:
    """Everything (besides the RNG state) a pool's outcome depends on.

    Members fix the candidate set, similarities/benefits feed every
    oracle query's metadata and the sampling order, and profiles drive
    the classifier's edge weights, Squeezer attributes, and display
    names.  Ground truth is deliberately absent: an existing stranger's
    judgment never changes (lazy judgments only *add* entries for newly
    visible users), and the set of members actually queried is a pure
    function of the fingerprint plus the RNG bracket.
    """
    return (
        pool.pool_id,
        pool.members,
        tuple(similarities[m] for m in pool.members),
        tuple(benefits[m] for m in pool.members),
        tuple(profiles[m] for m in pool.members),
    )


__all__ = [
    "PoolRecord",
    "ReplayOutcome",
    "ReplayStats",
    "SessionReplayState",
    "replay_session",
    "replay_supported",
]
