"""A terminal-based owner oracle: the library's Sight-extension stand-in.

The paper's owners answered through a Chrome extension rendering the
Section III-A question.  :class:`TerminalOracle` is the equivalent for
CLI deployments: it renders the exact question (similarity and benefit on
the 0-100 scale) and validates the 1/2/3 answer, re-prompting on garbage.

IO is injected (``input_fn`` / ``print_fn``) so the oracle is fully
testable and embeddable in other frontends.
"""

from __future__ import annotations

from typing import Callable

from ..errors import OracleError
from ..types import RiskLabel
from .oracle import LabelQuery
from .question import render_question

_PROMPT = "your answer [1=not risky, 2=risky, 3=very risky]: "


class TerminalOracle:
    """Asks the human at the terminal for each risk label.

    Parameters
    ----------
    input_fn, print_fn:
        IO hooks; default to the builtins.
    max_attempts:
        Invalid answers tolerated per query before giving up with
        :class:`~repro.errors.OracleError` (so a broken stdin cannot spin
        forever).
    """

    def __init__(
        self,
        input_fn: Callable[[str], str] = input,
        print_fn: Callable[[str], None] = print,
        max_attempts: int = 5,
    ) -> None:
        if max_attempts < 1:
            raise OracleError("max_attempts must be >= 1")
        self._input = input_fn
        self._print = print_fn
        self._max_attempts = max_attempts
        self._asked = 0

    @property
    def questions_asked(self) -> int:
        """How many queries have been answered so far."""
        return self._asked

    def label(self, query: LabelQuery) -> RiskLabel:
        """Render the question and collect a validated 1/2/3 answer."""
        self._print("")
        self._print(render_question(query))
        for _ in range(self._max_attempts):
            raw = self._input(_PROMPT).strip()
            if raw in {"1", "2", "3"}:
                self._asked += 1
                return RiskLabel(int(raw))
            self._print(
                "please answer 1 (not risky), 2 (risky) or 3 (very risky)"
            )
        raise OracleError(
            f"no valid answer after {self._max_attempts} attempts"
        )
