"""The combined stopping condition of Section III-D.

"We stop the risk learning process when risk labels are predicted with a
good accuracy (i.e., RMSE between owner given and predicted labels has to
be less than 0.5) and for at least n rounds there should be no
classification changes with a confidence c selected by the owner."

:class:`StoppingCondition` tracks both criteria across rounds; the pool
learner feeds it one observation per round and stops on the first round
where both hold (or on its own exhaustion/budget guards).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..config import LearningConfig


class StopReason(enum.Enum):
    """Why a pool's learning loop ended."""

    #: Both criteria of Section III-D held: RMSE below threshold and no
    #: classification change for ``n`` consecutive rounds.
    CONVERGED = "converged"
    #: Every stranger in the pool ended up owner-labeled.
    EXHAUSTED = "exhausted"
    #: The hard round cap was reached without convergence.
    MAX_ROUNDS = "max_rounds"


@dataclass
class StoppingCondition:
    """Stateful tracker of the combined stopping rule.

    Call :meth:`observe` once per round; it returns ``True`` when the loop
    should stop because both criteria are satisfied.
    """

    config: LearningConfig
    _consecutive_stable: int = field(default=0, init=False)
    _last_rmse: float | None = field(default=None, init=False)

    def observe(self, rmse: float | None, stabilized: bool) -> bool:
        """Record one round's accuracy and stabilization outcome.

        Parameters
        ----------
        rmse:
            The round's validation RMSE, or ``None`` when no validation
            pairs existed (first round, or nothing to compare).  A missing
            RMSE keeps the last observed value — stabilization may still
            progress, but convergence requires having *seen* a good RMSE.
        stabilized:
            Whether this round showed no classification change.
        """
        if rmse is not None:
            self._last_rmse = rmse
        if stabilized:
            self._consecutive_stable += 1
        else:
            self._consecutive_stable = 0
        return self.satisfied

    @property
    def satisfied(self) -> bool:
        """Whether the configured stopping criteria currently hold.

        The paper's rule is ``"combined"`` (both criteria); the
        single-criterion modes exist for the stopping-rule ablation
        (DESIGN.md §5): ``"accuracy"`` ignores stabilization,
        ``"stabilization"`` ignores the RMSE bound.
        """
        accuracy_ok = (
            self._last_rmse is not None
            and self._last_rmse < self.config.rmse_threshold
        )
        stability_ok = self._consecutive_stable >= self.config.stable_rounds
        mode = self.config.stopping_mode
        if mode == "accuracy":
            return accuracy_ok
        if mode == "stabilization":
            return stability_ok
        return accuracy_ok and stability_ok

    @property
    def consecutive_stable_rounds(self) -> int:
        """Rounds without classification change, counted consecutively."""
        return self._consecutive_stable

    @property
    def last_rmse(self) -> float | None:
        """Most recent validation RMSE, if any."""
        return self._last_rmse
