"""Rendering of the owner question (Section III-A).

The exact wording matters to the paper's design: the question explains that
risk should be judged *given* the displayed similarity and benefit values,
and that benefits may grow after friending.  Interactive frontends (and the
CLI example) render queries through this function so the phrasing stays
faithful.
"""

from __future__ import annotations

from .oracle import LabelQuery

_TEMPLATE = (
    "You and {name} are {similarity}/100 similar and he/she provides you "
    "{benefit}/100 benefits in terms of information you are allowed to see "
    "now on his/her profile. Do you think it might be risky to establish a "
    "relationship with {name}? Please respond by considering how much you "
    "are similar to {name} and that, after you become friends of him/her, "
    "benefits might increase as you might be allowed to see more resources "
    "in addition to his/her profile, e.g., his/her posts, photos, if "
    "privacy settings allow you.\n"
    "  [1] not risky   [2] risky   [3] very risky"
)


def render_question(query: LabelQuery) -> str:
    """The Section III-A question for one stranger.

    Similarity and benefit are presented on the 0-100 scale the Sight
    extension used.
    """
    name = query.stranger_name or f"stranger #{query.stranger}"
    return _TEMPLATE.format(
        name=name,
        similarity=round(query.similarity * 100),
        benefit=round(query.benefit * 100),
    )
