"""Per-round stranger sampling inside a pool.

The paper's informativeness strategy lives in the *pool construction*
(similar strangers share a pool, so any member is representative); within a
pool, strangers "are randomly selected at each round" — that is
:class:`RandomSampler`.  :class:`UncertaintySampler` is an extension for
the ablation benches: it prefers strangers whose current predictions are
least confident, the classic pool-based uncertainty criterion from the
active-learning survey the paper cites (ref [15]).
"""

from __future__ import annotations

import random
from typing import Mapping, Protocol, Sequence

from ..classifier.base import Prediction
from ..errors import LearningError
from ..types import UserId


class Sampler(Protocol):
    """Strategy choosing which unlabeled strangers to query this round."""

    def select(
        self,
        unlabeled: Sequence[UserId],
        count: int,
        rng: random.Random,
        predictions: Mapping[UserId, Prediction] | None,
    ) -> list[UserId]:  # pragma: no cover - protocol signature
        """Choose up to ``count`` strangers from ``unlabeled``."""
        ...


def _check_request(unlabeled: Sequence[UserId], count: int) -> None:
    if count < 1:
        raise LearningError(f"sample count must be >= 1, got {count}")
    if not unlabeled:
        raise LearningError("cannot sample from an empty unlabeled set")


class RandomSampler:
    """Uniform random sampling — the paper's in-pool strategy."""

    def select(
        self,
        unlabeled: Sequence[UserId],
        count: int,
        rng: random.Random,
        predictions: Mapping[UserId, Prediction] | None = None,
    ) -> list[UserId]:
        """Pick up to ``count`` strangers uniformly at random."""
        _check_request(unlabeled, count)
        pool = sorted(unlabeled)  # determinism under a seeded rng
        take = min(count, len(pool))
        return rng.sample(pool, take)


class UncertaintySampler:
    """Least-confidence sampling (extension; not in the paper's pipeline).

    Strangers with the smallest top-class mass are queried first.  Before
    any prediction exists (round 1) it falls back to random sampling.
    """

    def __init__(self) -> None:
        self._fallback = RandomSampler()

    def select(
        self,
        unlabeled: Sequence[UserId],
        count: int,
        rng: random.Random,
        predictions: Mapping[UserId, Prediction] | None = None,
    ) -> list[UserId]:
        """Pick the ``count`` least-confident strangers."""
        _check_request(unlabeled, count)
        if not predictions:
            return self._fallback.select(unlabeled, count, rng, predictions)

        def confidence(stranger: UserId) -> float:
            prediction = predictions.get(stranger)
            if prediction is None:
                return -1.0  # never predicted: maximally interesting
            return max(prediction.masses.values())

        ranked = sorted(sorted(unlabeled), key=confidence)
        return ranked[: min(count, len(ranked))]
