"""The full per-owner risk learning session.

:class:`RiskLearningSession` wires every stage of Figure 1 of the paper:
similarity and benefit computation, pool construction, one active-learning
loop per pool, and aggregation into a
:class:`~repro.learning.results.SessionResult`.

Typical use::

    session = RiskLearningSession(graph, owner, oracle)
    result = session.run()
    labels = result.final_labels()   # a RiskLabel for every stranger
"""

from __future__ import annotations

import dataclasses
import random
from typing import Literal, Mapping

from ..similarity.profile import attribute_coverage

from ..benefits.model import BenefitModel
from ..classifier.base import ClassifierFactory
from ..classifier.graphs import SimilarityGraph
from ..classifier.harmonic import HarmonicClassifier
from ..classifier.knn import KnnClassifier
from ..classifier.majority import MajorityClassifier
from ..clustering.pools import StrangerPool, build_network_only_pools, build_pools
from ..config import PipelineConfig
from ..errors import LearningError
from ..graph.ego import EgoNetwork
from ..graph.social_graph import SocialGraph
from ..similarity.network import NetworkSimilarity
from ..similarity.profile import ProfileSimilarity
from ..types import ProfileAttribute, RiskLabel, UserId
from .oracle import LabelOracle
from .pool_learner import PoolLearner
from .results import PoolResult, SessionResult
from .sampling import Sampler
from .stopping import StopReason

#: Names accepted by the ``classifier`` shorthand.
CLASSIFIER_NAMES = ("harmonic", "knn", "majority")

#: Default attribute weights for the classifier's PS() edge weights.  The
#: paper notes that per-item weights "help us in catching the relevance of
#: some profile items over the others"; the clustering attributes (which
#: Table I shows carry the owner's rationale) get the larger shares.
DEFAULT_EDGE_WEIGHTS: dict[ProfileAttribute, float] = {
    ProfileAttribute.GENDER: 0.30,
    ProfileAttribute.LOCALE: 0.25,
    ProfileAttribute.LAST_NAME: 0.09,
    ProfileAttribute.HOMETOWN: 0.09,
    ProfileAttribute.EDUCATION: 0.09,
    ProfileAttribute.WORK: 0.09,
    ProfileAttribute.LOCATION: 0.09,
}

#: Pooling strategies: the paper's NPP pools or the NSP baseline.
PoolingStrategy = Literal["npp", "nsp"]


class RiskLearningSession:
    """End-to-end risk learning for one owner.

    Parameters
    ----------
    graph:
        The social graph.
    owner:
        The owner's user id.
    oracle:
        Answers the owner's risk-label queries.
    config:
        Full pipeline configuration (paper defaults when omitted).
    classifier:
        Either one of ``"harmonic"`` (the paper's choice), ``"knn"``,
        ``"majority"``, or a custom
        :class:`~repro.classifier.base.ClassifierFactory`.
    pooling:
        ``"npp"`` for network-and-profile pools (Definition 3) or
        ``"nsp"`` for network-only pools (the Section IV-C baseline).
    benefit_model:
        Owner's benefit measure; defaults to Table III thetas.
    sampler:
        In-pool sampling strategy override.
    seed:
        Seed for the session RNG (falls back to ``config.learning.seed``).
    edge_similarity_wrapper:
        Optional hook wrapping the per-pool ``PS()`` measure before edge
        weights are computed — e.g.
        ``lambda ps: VisibilityAugmentedSimilarity(ps, mix=0.3)`` for the
        visibility-augmented extension.  ``None`` keeps the paper's
        edge weights.
    fetcher:
        Optional profile fetcher (``fetch(graph, user_ids)`` returning a
        :class:`~repro.resilience.FetchReport`), e.g. a
        :class:`~repro.resilience.ResilientFetcher` over a fault-injected
        source.  ``None`` reads profiles straight off the graph.  Members
        whose profiles never arrive are flagged unreachable in the pool
        result instead of aborting the session.
    """

    def __init__(
        self,
        graph: SocialGraph,
        owner: UserId,
        oracle: LabelOracle,
        config: PipelineConfig | None = None,
        classifier: str | ClassifierFactory = "harmonic",
        pooling: PoolingStrategy = "npp",
        benefit_model: BenefitModel | None = None,
        sampler: Sampler | None = None,
        seed: int | None = None,
        edge_similarity_wrapper=None,
        network_similarity=None,
        fetcher=None,
        classifier_cache: dict | None = None,
    ) -> None:
        self._graph = graph
        self._owner = owner
        self._oracle = oracle
        self._config = config or PipelineConfig()
        self._classifier_factory = self._resolve_classifier(classifier)
        if pooling not in ("npp", "nsp"):
            raise LearningError(f"unknown pooling strategy {pooling!r}")
        self._pooling: PoolingStrategy = pooling
        self._benefit_model = benefit_model or BenefitModel()
        self._sampler = sampler
        self._seed = seed if seed is not None else self._config.learning.seed
        self._edge_similarity_wrapper = edge_similarity_wrapper
        #: Optional NS() override (any SimilarityMeasure); ``None`` uses
        #: the default reconstruction with the session's config.
        self._network_similarity = network_similarity
        self._fetcher = fetcher
        #: Optional cross-session classifier memo, ``pool_id -> (profiles,
        #: classifier)``.  When the pool's profiles are unchanged the
        #: similarity graph — and the classifier holding the splu factor
        #: cache — is reused instead of rebuilt, so a warm re-run of an
        #: untouched-membership pool skips graph assembly and (on a
        #: factor-cache hit) the sparse factorization.  Only consulted
        #: when no fetcher and no edge-similarity wrapper are active
        #: (both can change the effective profiles/weights per run).
        self._classifier_cache = classifier_cache
        self._ego = EgoNetwork(graph, owner)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def ego(self) -> EgoNetwork:
        """The owner's ego view (friends / strangers)."""
        return self._ego

    @property
    def config(self) -> PipelineConfig:
        """The active configuration."""
        return self._config

    @property
    def seed(self) -> int:
        """The session RNG seed."""
        return self._seed

    @property
    def pooling(self) -> PoolingStrategy:
        """The active pooling strategy."""
        return self._pooling

    @property
    def benefit_model(self) -> BenefitModel:
        """The owner's benefit measure."""
        return self._benefit_model

    # ------------------------------------------------------------------
    # pipeline
    # ------------------------------------------------------------------
    def compute_similarities(self) -> dict[UserId, float]:
        """``NS(owner, s)`` for every stranger."""
        if self._network_similarity is not None:
            return {
                stranger: self._network_similarity(
                    self._graph, self._owner, stranger
                )
                for stranger in self._ego.strangers
            }
        measure = NetworkSimilarity(self._config.network_similarity)
        return measure.for_strangers(self._graph, self._owner, self._ego.strangers)

    def compute_benefits(self) -> dict[UserId, float]:
        """``B(owner, s)`` for every stranger."""
        return self._benefit_model.for_strangers(
            self._graph, self._owner, self._ego.strangers
        )

    def build_pools(
        self, similarities: Mapping[UserId, float] | None = None
    ) -> list[StrangerPool]:
        """Construct the stranger pools per the session's strategy."""
        if similarities is None:
            similarities = self.compute_similarities()
        if self._pooling == "nsp":
            return build_network_only_pools(similarities, self._config.pooling)
        return build_pools(
            similarities, self._ego.stranger_profiles(), self._config.pooling
        )

    def run(
        self,
        strangers: frozenset[UserId] | set[UserId] | None = None,
        initial_labels: Mapping[UserId, RiskLabel] | None = None,
        checkpointer=None,
    ) -> SessionResult:
        """Run the full session: pools, loops, aggregation.

        Parameters
        ----------
        strangers:
            Optional subset of the owner's strangers to learn over.  The
            Sight crawler discovers strangers progressively; passing the
            discovered prefix runs the paper's start-labeling-on-day-one
            workflow.  Ids outside the owner's stranger set raise.
        initial_labels:
            Owner labels already gathered (e.g. by a previous session on
            an earlier snapshot of the graph).  They seed each pool's
            labeled set without new oracle queries — the warm start used
            by :mod:`repro.learning.incremental`.
        checkpointer:
            Optional :class:`~repro.io.checkpoint.SessionCheckpointer`.
            Each completed pool is persisted together with the session's
            RNG state; a re-run with the same checkpointer skips the
            completed pools and replays the remainder from the exact
            random state a killed run left behind, reproducing the
            uninterrupted run byte for byte.

        Raises
        ------
        LearningError
            If the owner has no strangers (nothing to learn about), or
            the subset contains non-strangers.
        """
        if strangers is None:
            target = self._ego.strangers
        else:
            unknown = set(strangers) - self._ego.strangers
            if unknown:
                raise LearningError(
                    f"not strangers of owner {self._owner}: "
                    f"{sorted(unknown)[:5]}"
                )
            target = frozenset(strangers)
        if not target:
            raise LearningError(
                f"owner {self._owner} has no strangers; nothing to learn"
            )
        similarities = {
            stranger: value
            for stranger, value in self.compute_similarities().items()
            if stranger in target
        }
        benefits = self.compute_benefits()
        pools = self.build_pools(similarities)
        rng = random.Random(self._seed)

        completed: dict[str, PoolResult] = {}
        if checkpointer is not None:
            completed = checkpointer.load(rng)

        pool_results: list[PoolResult] = []
        for pool in pools:
            if pool.pool_id in completed:
                pool_results.append(completed[pool.pool_id])
                continue
            result = self._run_pool(
                pool, similarities, benefits, rng, initial_labels
            )
            pool_results.append(result)
            if checkpointer is not None:
                checkpointer.record(result, rng)
        return SessionResult(
            owner=self._owner,
            pool_results=tuple(pool_results),
            confidence=self._config.learning.confidence,
        )

    def run_pool(
        self,
        pool: StrangerPool,
        similarities: Mapping[UserId, float],
        benefits: Mapping[UserId, float],
        rng: random.Random,
        initial_labels: Mapping[UserId, RiskLabel] | None = None,
    ) -> PoolResult:
        """Run one pool's learning loop with the given session RNG.

        The public seam the incremental replay
        (:mod:`repro.learning.replay`) drives: a replay that reuses some
        pools verbatim must run the *remaining* pools with the RNG in
        exactly the state a full :meth:`run` would have reached — the
        caller owns the RNG threading, this method only consumes it.
        """
        return self._run_pool(pool, similarities, benefits, rng, initial_labels)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _run_pool(
        self,
        pool: StrangerPool,
        similarities: Mapping[UserId, float],
        benefits: Mapping[UserId, float],
        rng: random.Random,
        initial_labels: Mapping[UserId, RiskLabel] | None = None,
    ) -> PoolResult:
        if self._fetcher is not None:
            report = self._fetcher.fetch(self._graph, pool.members)
            profiles = list(report.profiles)
            fetch_unreachable = frozenset(report.unreachable)
        else:
            profiles = self._graph.profiles(pool.members)
            fetch_unreachable = frozenset()
        members = tuple(
            member for member in pool.members if member not in fetch_unreachable
        )
        if not members:
            # The whole pool's data is gone: flag it, don't abort the run.
            return PoolResult(
                pool_id=pool.pool_id,
                nsg_index=pool.nsg_index,
                rounds=(),
                owner_labels={},
                predicted_labels={},
                stop_reason=StopReason.MAX_ROUNDS,
                unreachable=frozenset(pool.members),
                profile_coverage=0.0,
            )
        classifier = self._cached_classifier(pool.pool_id, profiles)
        if classifier is None:
            # Edge weights use PS() built on the pool's own profiles — "the
            # frequency of the item values in the data set (i.e., the
            # profiles in the considered pool)" (Section III-C).
            pool_similarity = ProfileSimilarity(
                profiles,
                attributes=tuple(ProfileAttribute),
                weights=DEFAULT_EDGE_WEIGHTS,
                config=self._config.profile_similarity,
            )
            edge_similarity = (
                self._edge_similarity_wrapper(pool_similarity)
                if self._edge_similarity_wrapper is not None
                else pool_similarity
            )
            similarity_graph = SimilarityGraph.from_profiles(
                profiles,
                edge_similarity,
                min_edge_weight=self._config.classifier.min_edge_weight,
                sharpening=self._config.classifier.edge_sharpening,
            )
            classifier = self._classifier_factory(similarity_graph)
            if self._cache_eligible():
                self._classifier_cache[pool.pool_id] = (
                    list(profiles),
                    classifier,
                )
        learner = PoolLearner(
            pool_id=pool.pool_id,
            nsg_index=pool.nsg_index,
            members=members,
            classifier=classifier,
            oracle=self._oracle,
            config=self._config.learning,
            similarities=similarities,
            benefits=benefits,
            names=self._display_names(profiles),
            sampler=self._sampler,
            rng=rng,
            initial_labels=initial_labels,
        )
        result = learner.run()
        if self._fetcher is None:
            return result
        return dataclasses.replace(
            result,
            unreachable=result.unreachable | fetch_unreachable,
            profile_coverage=attribute_coverage(profiles),
        )

    def _cache_eligible(self) -> bool:
        """Whether the cross-session classifier memo may be used."""
        return (
            self._classifier_cache is not None
            and self._fetcher is None
            and self._edge_similarity_wrapper is None
        )

    def _cached_classifier(self, pool_id: str, profiles):
        """A memoized classifier for the pool, or ``None`` to rebuild.

        A hit requires the pool's profile list (identity *and* content)
        to equal the one the classifier's similarity graph was built
        from — the graph's edge weights are a pure function of those
        profiles and the fixed config, so the reused instance predicts
        byte-identically to a rebuilt one.
        """
        if not self._cache_eligible():
            return None
        entry = self._classifier_cache.get(pool_id)
        if entry is None:
            return None
        cached_profiles, classifier = entry
        if cached_profiles != list(profiles):
            return None
        return classifier

    @staticmethod
    def _display_names(profiles) -> dict[UserId, str]:
        """Human-readable query names, as the Sight UI would show them."""
        names = {}
        for profile in profiles:
            last_name = profile.attribute(ProfileAttribute.LAST_NAME)
            if last_name:
                names[profile.user_id] = f"{last_name} (#{profile.user_id})"
        return names

    def _resolve_classifier(
        self, classifier: str | ClassifierFactory
    ) -> ClassifierFactory:
        if callable(classifier):
            return classifier
        if classifier == "harmonic":
            return lambda graph: HarmonicClassifier(graph, self._config.classifier)
        if classifier == "knn":
            return lambda graph: KnnClassifier(graph, self._config.classifier)
        if classifier == "majority":
            return lambda graph: MajorityClassifier(graph)
        raise LearningError(
            f"unknown classifier {classifier!r}; expected one of "
            f"{CLASSIFIER_NAMES} or a factory"
        )
