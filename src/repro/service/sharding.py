"""Owner-space partitioning: a consistent-hash ring over shard workers.

One ``ThreadingHTTPServer`` + one WAL + one scheduler is a single-node
ceiling *and* a single point of failure; scoring millions of owners
needs the owner space partitioned across processes that fail — and
recover — independently.  :class:`ShardMap` is the partition function:
a consistent-hash ring (SHA-1, ``replicas`` virtual nodes per shard)
mapping every owner id to exactly one shard index.

Two properties matter:

* **cross-process determinism** — the ring is built from ``hashlib``
  digests of stable strings, never Python's salted ``hash()``, so the
  router, every shard worker, every test, and every future process agree
  on the owner → shard assignment without coordination;
* **consistency** — when the shard count changes, only the owners whose
  arc of the ring moved are reassigned (≈ ``1/n`` of the owner space),
  instead of rehashing everything the way ``owner % n`` would.

A shard worker is an ordinary ``repro-study serve`` process started with
``--shard-index I --shard-count N``: it builds the same deterministic
cohort, then registers only the owners the map assigns to it — keeping
each owner's **global cohort index**, so the per-owner session seed
(``base_seed + index``) and therefore every served digest is identical
to the unsharded deployment.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Any, Iterable, Sequence

from ..errors import ServiceError
from ..types import UserId

#: Virtual nodes per shard on the ring.  More replicas → smoother owner
#: balance; 64 keeps the worst shard within a few percent of fair share
#: for cohorts in the thousands while the ring stays tiny.
DEFAULT_REPLICAS = 64


def _ring_point(key: str) -> int:
    """A stable 64-bit position on the ring for ``key``.

    SHA-1 via :mod:`hashlib`: unlike builtin ``hash()`` it is identical
    across processes, interpreter versions, and ``PYTHONHASHSEED``.
    """
    return int.from_bytes(
        hashlib.sha1(key.encode("utf-8")).digest()[:8], "big"
    )


class ShardMap:
    """Deterministic consistent-hash assignment of owners to shards.

    Parameters
    ----------
    num_shards:
        How many shard workers the owner space is split across.
    replicas:
        Virtual nodes per shard on the ring.
    """

    def __init__(
        self, num_shards: int, replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if num_shards < 1:
            raise ServiceError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        if replicas < 1:
            raise ServiceError(f"replicas must be >= 1, got {replicas}")
        self._num_shards = num_shards
        self._replicas = replicas
        points: list[tuple[int, int]] = []
        for shard in range(num_shards):
            for replica in range(replicas):
                points.append(
                    (_ring_point(f"shard:{shard}:replica:{replica}"), shard)
                )
        points.sort()
        self._ring_points = [point for point, _ in points]
        self._ring_shards = [shard for _, shard in points]

    @property
    def num_shards(self) -> int:
        """How many shards the ring covers."""
        return self._num_shards

    @property
    def replicas(self) -> int:
        """Virtual nodes per shard."""
        return self._replicas

    def shard_of(self, owner_id: UserId) -> int:
        """The shard index owning ``owner_id`` (same in every process)."""
        point = _ring_point(f"owner:{int(owner_id)}")
        index = bisect_right(self._ring_points, point)
        if index == len(self._ring_points):  # wrap past the last node
            index = 0
        return self._ring_shards[index]

    def partition(
        self, owner_ids: Iterable[UserId]
    ) -> dict[int, list[UserId]]:
        """Group ``owner_ids`` by owning shard, preserving input order."""
        groups: dict[int, list[UserId]] = {}
        for owner_id in owner_ids:
            groups.setdefault(self.shard_of(owner_id), []).append(owner_id)
        return groups

    def owners_for_shard(
        self, owner_ids: Sequence[UserId], shard_index: int
    ) -> list[UserId]:
        """The subset of ``owner_ids`` assigned to ``shard_index``."""
        if not 0 <= shard_index < self._num_shards:
            raise ServiceError(
                f"shard_index {shard_index} out of range for "
                f"{self._num_shards} shards"
            )
        return [
            owner_id
            for owner_id in owner_ids
            if self.shard_of(owner_id) == shard_index
        ]

    def resized(self, num_shards: int) -> "ShardMap":
        """A new map with ``num_shards`` shards and the same replicas.

        Because ring points are derived from stable ``shard:I:replica:R``
        strings, growing only *adds* points and shrinking only *removes*
        them — so the set of owners whose assignment changes between
        ``self`` and ``self.resized(n)`` is exactly the consistent-hash
        delta (≈ ``|n - num_shards| / max(n, num_shards)`` of the space).
        """
        return ShardMap(num_shards, replicas=self._replicas)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready description for ``/shards`` and metrics."""
        return {
            "num_shards": self._num_shards,
            "replicas": self._replicas,
            "algorithm": "consistent-hash/sha1",
        }


def moved_owners(
    old_map: ShardMap,
    new_map: ShardMap,
    owner_ids: Iterable[UserId],
) -> dict[tuple[int, int], list[UserId]]:
    """The exact set of owners a resize moves, grouped by migration edge.

    Returns ``{(source_shard, destination_shard): [owner_id, ...]}`` for
    every owner whose assignment differs between ``old_map`` and
    ``new_map``, preserving input order within each group.  Owners whose
    shard is unchanged do not appear — they must see zero disruption
    during a rebalance, and the migration plan is built solely from this
    delta.
    """
    if old_map.replicas != new_map.replicas:
        raise ServiceError(
            "cannot compute a ring delta across replica counts: "
            f"{old_map.replicas} != {new_map.replicas}"
        )
    moves: dict[tuple[int, int], list[UserId]] = {}
    for owner_id in owner_ids:
        source = old_map.shard_of(owner_id)
        destination = new_map.shard_of(owner_id)
        if source != destination:
            moves.setdefault((source, destination), []).append(owner_id)
    return moves


__all__ = ["DEFAULT_REPLICAS", "ShardMap", "moved_owners"]
