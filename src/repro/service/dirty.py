"""Dirty-set deltas: what one store mutation actually staled.

Every :class:`~repro.service.store.OwnerStore` mutation bumps the
affected owners' versions — that is the *invalidation* signal the engine
keys its memo on.  But a version bump alone forces the warm path to
treat the whole universe as suspect.  The dirty-set layer records,
alongside each bump, *which strangers the mutation could actually have
touched*:

* ``ns`` — strangers whose network similarity ``NS(o, s)`` may have
  changed (derived exactly from the toggled edge's adjacency rows, see
  :func:`repro.graph.metrics.ns_dirty_after_edge_toggle`);
* ``profiles`` — users whose profile changed (benefit vectors, Squeezer
  attributes, and classifier edge weights may shift for pools containing
  them);
* ``full`` — the conservative everything-changed flag, used for manual
  ``touch`` bumps and for mutations where the owner is an edge endpoint
  (their whole ego view moves).

Deltas are kept in a bounded per-owner :class:`DirtyLog`, one entry per
version.  The engine asks for the merged delta covering the gap between
its cached pipeline state and the current version; a gap the log no
longer covers (evicted, or an entry that predates the log — e.g. a
migrated owner) answers ``None``, which callers must treat as *full*.
A delta is always a conservative superset: listing an untouched stranger
costs a little recomputation, omitting a touched one would break the
byte-identical equivalence gate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from ..types import UserId

#: Default per-owner bound on retained deltas.  A pipeline state that
#: lags more than this many versions behind pays one full recompute —
#: at which point it is caught up, so the bound only matters for owners
#: mutated heavily between scores.
DEFAULT_DIRTY_LOG_LIMIT = 128


@dataclass(frozen=True)
class DirtyDelta:
    """What one version bump may have changed for one owner."""

    ns: frozenset[UserId] = frozenset()
    profiles: frozenset[UserId] = frozenset()
    full: bool = False

    def merge(self, other: "DirtyDelta") -> "DirtyDelta":
        """The union of two deltas (``full`` dominates)."""
        if self.full or other.full:
            return FULL_DELTA
        return DirtyDelta(
            ns=self.ns | other.ns,
            profiles=self.profiles | other.profiles,
        )

    @staticmethod
    def union(deltas: Iterable["DirtyDelta"]) -> "DirtyDelta":
        """Merge any number of deltas."""
        merged = EMPTY_DELTA
        for delta in deltas:
            merged = merged.merge(delta)
            if merged.full:
                return merged
        return merged

    def to_dict(self) -> dict[str, object]:
        """JSON-ready view (diagnostics)."""
        return {
            "full": self.full,
            "ns": sorted(self.ns),
            "profiles": sorted(self.profiles),
        }


#: The no-op delta (``add_user`` of an edgeless user: nothing an owner
#: can currently see changed).
EMPTY_DELTA = DirtyDelta()

#: The everything-changed delta.
FULL_DELTA = DirtyDelta(full=True)


@dataclass
class DirtyLog:
    """Bounded per-owner history of ``version -> DirtyDelta``.

    Versions are recorded contiguously (every bump appends exactly one
    entry), so coverage of a range is a pure length check.  Not
    thread-safe on its own — the owning store's lock serializes access.
    """

    limit: int = DEFAULT_DIRTY_LOG_LIMIT
    _entries: deque = field(default_factory=deque, repr=False)

    def record(self, version: int, delta: DirtyDelta) -> None:
        """Append the delta that produced ``version``."""
        self._entries.append((version, delta))
        while len(self._entries) > self.limit:
            self._entries.popleft()

    def between(self, since: int, current: int) -> DirtyDelta | None:
        """Merged delta covering ``(since, current]``, or ``None``.

        ``None`` means the log cannot vouch for the whole range — some
        bump's delta was evicted or never recorded (an attached
        migrated entry starts with an empty log) — and the caller must
        fall back to a full recompute.
        """
        if current == since:
            return EMPTY_DELTA
        if current < since:
            return None
        relevant = [
            delta for version, delta in self._entries if since < version <= current
        ]
        if len(relevant) != current - since:
            return None
        return DirtyDelta.union(relevant)

    def clear(self) -> None:
        """Forget everything (wholesale graph replacement)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


__all__ = [
    "DEFAULT_DIRTY_LOG_LIMIT",
    "DirtyDelta",
    "DirtyLog",
    "EMPTY_DELTA",
    "FULL_DELTA",
]
