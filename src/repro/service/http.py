"""Stdlib-only JSON HTTP front-end over the risk engine.

A :class:`RiskServiceServer` (``http.server.ThreadingHTTPServer``) exposes

* ``GET /healthz`` — liveness plus owner count (and, when the store is
  WAL-backed, the recovery report and last durable sequence number);
* ``GET /readyz`` — readiness: snapshot loaded, WAL replayed, scheduler
  accepting work; 503 while starting or draining;
* ``GET /metrics`` — engine cache/latency counters, scheduler state,
  circuit-breaker state, and WAL append/fsync counters;
* ``GET /owners`` — registered owners with versions and cache freshness;
* ``GET /measures`` — the registered risk measures (name, description,
  default flag) served straight from :mod:`repro.measures`;
* ``GET /score?owner=<id>[&measure=<name>]`` / ``POST /score``
  (``{"owner": <id>, "measure": <name>}``) — one owner's risk score
  under the named measure (default ``stranger``), served cold, warm, or
  from cache; an unknown measure is a 400 listing the registry;
* ``POST /score-batch`` (``{"owners": [<id>, ...], "measure": <name>}``)
  — many owners in one request, streamed back as NDJSON (one JSON
  object per line, in request order) as each score completes; per-owner
  failures become error lines instead of failing the whole batch;
* ``POST /mutate`` — one store mutation (``add_friendship``,
  ``remove_friendship``, ``update_profile``, ``add_user``,
  ``grant_labels``, ``touch``); a 200 means the mutation is applied
  *and*, on a WAL-backed store, durable — acknowledged-then-lost cannot
  happen;
* ``POST /slice/export|import|detach|digest`` — the shard-side handoff
  surface for live rebalancing: export the moved owners' full state
  (with digests), replay an exported slice into this shard's durable
  store, drop migrated owners post-cutover, and report a state digest
  for verification.  Driven by the router's rebalance coordinator, not
  by clients.

Requests flow through the resilience layer: each ``/score`` carries a
:class:`~repro.resilience.Deadline` (504 when the budget runs out) and a
shared :class:`~repro.resilience.CircuitBreaker` (503 fast-fail while
scoring is known to be broken).  Backpressure and outage speak different
status codes: scheduler *saturation* is 429 + ``Retry-After`` (the
client should slow down), while drain/shutdown is 503 (the client
should fail over).  While the server drains (SIGTERM/SIGINT), ``/score``
and ``/mutate`` answer 503 so load balancers fail over, while the
health/metrics endpoints keep reporting drain progress.
"""

from __future__ import annotations

import json
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from ..errors import (
    BackpressureError,
    GraphError,
    RebalanceError,
    SerializationError,
    UnknownMeasureError,
    UnknownOwnerError,
    UnknownUserError,
    WalError,
)
from ..measures import available_measures, measure_catalog
from ..resilience import CircuitBreaker, Deadline
from .engine import RiskEngine
from .scheduler import ScoreScheduler
from .wal import (
    MUTATION_OPS,
    DurableOwnerStore,
    detach_slice,
    export_slice,
    import_slice,
    mutate_store,
    state_digest,
)


# Sentinel distinguishing "measure was invalid (response already sent)"
# from "no measure requested" (None → the engine default).
_INVALID_MEASURE = object()


@dataclass
class ServiceState:
    """Mutable lifecycle flags shared by the server and its operator.

    ``ready`` flips true once the store is loaded (snapshot restored and
    WAL replayed, for durable stores) and the service may take traffic;
    ``draining`` flips true on SIGTERM/SIGINT and never flips back.
    Plain attribute reads/writes — each flag is a single word, and the
    readers tolerate staleness of one request.
    """

    ready: bool = True
    draining: bool = False
    detail: str = "ok"


class RiskServiceServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one engine and scheduler."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        engine: RiskEngine,
        scheduler: ScoreScheduler,
        request_timeout: float = 60.0,
        breaker: CircuitBreaker | None = None,
        quiet: bool = True,
        state: ServiceState | None = None,
        refresher=None,
    ) -> None:
        super().__init__(address, RiskServiceHandler)
        self.engine = engine
        self.scheduler = scheduler
        self.request_timeout = request_timeout
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=5, recovery_time=5.0
        )
        self.quiet = quiet
        self.state = state or ServiceState()
        # optional RefreshScheduler: surfaces under /metrics as "refresh"
        self.refresher = refresher

    @property
    def url(self) -> str:
        """The server's base URL (useful with an ephemeral port)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class MeasureParsingMixin:
    """Shared ``measure`` parsing for the worker and router handlers.

    Both speak the same wire convention — ``?measure=<name>`` on GET,
    an optional ``"measure"`` body field on POST — and both must answer
    an unknown name with a 400 that lists the registry.  Requires the
    host class to provide ``_respond``.
    """

    def _measure_from_values(self, values: list[str] | None):
        """Validate an optional requested measure name.

        Returns the name (or ``None`` when absent, keeping the engine
        default).  An unregistered name answers 400 with the registry's
        menu and returns :data:`_INVALID_MEASURE`.
        """
        if not values:
            return None
        name = values[0]
        if name not in available_measures():
            self._respond(
                400,
                {
                    "error": (
                        f"unknown risk measure {name!r}; "
                        "see GET /measures"
                    ),
                    "measures": list(available_measures()),
                },
            )
            return _INVALID_MEASURE
        return name

    def _measure_from_body(self, body: dict[str, Any]):
        """The optional ``"measure"`` field of a JSON body, validated."""
        if "measure" not in body or body["measure"] is None:
            return None
        measure = body["measure"]
        if not isinstance(measure, str):
            self._respond(
                400,
                {
                    "error": f"invalid measure {measure!r}; expected a name",
                    "measures": list(available_measures()),
                },
            )
            return _INVALID_MEASURE
        return self._measure_from_values([measure])


class RiskServiceHandler(MeasureParsingMixin, BaseHTTPRequestHandler):
    """Routes the four service endpoints to the engine/scheduler."""

    # HTTP/1.1 so clients reuse connections: every response carries a
    # Content-Length (or explicitly closes, as /score-batch does), which
    # keep-alive requires
    protocol_version = "HTTP/1.1"

    server: RiskServiceServer

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Route GET requests to the read endpoints."""
        parsed = urlparse(self.path)
        if parsed.path == "/healthz":
            self._respond(200, self._health_document())
        elif parsed.path == "/readyz":
            self._readyz()
        elif parsed.path == "/metrics":
            self._respond(200, self._metrics_document())
        elif parsed.path == "/owners":
            self._respond(200, {"owners": self.server.engine.owners_overview()})
        elif parsed.path == "/measures":
            self._respond(200, {"measures": measure_catalog()})
        elif parsed.path == "/score":
            if self._reject_while_draining():
                return
            query = parse_qs(parsed.query)
            owner_id = self._owner_from_query(query)
            if owner_id is None:
                return
            measure = self._measure_from_values(query.get("measure"))
            if measure is not _INVALID_MEASURE:
                self._score(owner_id, measure)
        else:
            self._respond(404, {"error": f"unknown path {parsed.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Route POST /score and POST /mutate (JSON bodies)."""
        parsed = urlparse(self.path)
        if parsed.path == "/score":
            if self._reject_while_draining():
                return
            body = self._json_body()
            if body is None:
                return
            owner_id = self._owner_from_body(body)
            if owner_id is None:
                return
            measure = self._measure_from_body(body)
            if measure is not _INVALID_MEASURE:
                self._score(owner_id, measure)
        elif parsed.path == "/score-batch":
            if self._reject_while_draining():
                return
            self._score_batch()
        elif parsed.path == "/mutate":
            if self._reject_while_draining():
                return
            self._mutate()
        elif parsed.path == "/slice/export":
            self._slice_export()
        elif parsed.path == "/slice/import":
            self._slice_import()
        elif parsed.path == "/slice/detach":
            self._slice_detach()
        elif parsed.path == "/slice/digest":
            self._slice_digest()
        else:
            self._respond(404, {"error": f"unknown path {parsed.path!r}"})

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def _health_document(self) -> dict[str, Any]:
        store = self.server.engine.store
        document: dict[str, Any] = {
            "status": "ok",
            "owners": len(store.owner_ids()),
            "breaker": self.server.breaker.state,
            "draining": self.server.state.draining,
        }
        if isinstance(store, DurableOwnerStore):
            document["recovery"] = store.recovery.to_dict()
            document["last_seq"] = store.last_seq
        return document

    def _readyz(self) -> None:
        state = self.server.state
        accepting = self.server.scheduler.accepting
        ready = state.ready and not state.draining and accepting
        document = {
            "ready": ready,
            "detail": state.detail,
            "draining": state.draining,
            "scheduler_accepting": accepting,
            "pending": self.server.scheduler.pending_count(),
        }
        self._respond(200 if ready else 503, document)

    def _reject_while_draining(self) -> bool:
        """503 work-bearing requests during drain; health stays live."""
        if self.server.state.draining:
            self._respond(
                503,
                {
                    "error": "service is draining",
                    "pending": self.server.scheduler.pending_count(),
                },
                retry_after=1,
            )
            return True
        return False

    def _metrics_document(self) -> dict[str, Any]:
        document = {
            "engine": self.server.engine.metrics.snapshot(),
            "scheduler": self.server.scheduler.snapshot(),
            "breaker": self.server.breaker.snapshot(),
        }
        store = self.server.engine.store
        if isinstance(store, DurableOwnerStore):
            document["wal"] = store.wal.stats()
        backend = getattr(self.server.engine, "backend", None)
        if backend is not None and hasattr(backend, "stats"):
            document["workers"] = backend.stats()
        refresher = getattr(self.server, "refresher", None)
        if refresher is not None:
            document["refresh"] = refresher.snapshot()
        return document

    def _mutate(self) -> None:
        body = self._json_body()
        if body is None:
            return
        op = body.get("op")
        if op not in MUTATION_OPS:
            self._respond(
                400,
                {
                    "error": f"unknown op {op!r}",
                    "ops": list(MUTATION_OPS),
                },
            )
            return
        store = self.server.engine.store
        try:
            result = mutate_store(store, op, body)
        except (UnknownUserError, UnknownOwnerError) as error:
            self._respond(404, {"error": str(error)})
        except (GraphError, SerializationError) as error:
            self._respond(400, {"error": str(error)})
        except (KeyError, TypeError, ValueError) as error:
            self._respond(
                400, {"error": f"malformed arguments for {op!r}: {error}"}
            )
        except WalError as error:
            # not acknowledged: under "always" the append failed before
            # the mutation applied; under "group" the fsync barrier
            # failed after it applied in memory, poisoning the log —
            # either way the client must not treat the mutation as
            # durable
            self._respond(500, {"error": str(error)})
        else:
            self._respond(200, result)

    def _score(self, owner_id: int, measure: str | None = None) -> None:
        breaker = self.server.breaker
        try:
            breaker.before_call()
        except Exception as error:
            self._respond(
                503, {"error": str(error)}, retry_after=1
            )
            return
        deadline = Deadline(self.server.request_timeout)
        try:
            future = self.server.scheduler.submit(owner_id, measure=measure)
        except BackpressureError as error:
            breaker.record_failure()
            # saturation asks the client to slow down (429); a draining or
            # shut-down scheduler is an outage to fail over from (503)
            self._respond(
                429 if error.saturated else 503,
                {"error": str(error), "pending": error.pending},
                retry_after=1,
            )
            return
        try:
            record = future.result(timeout=deadline.remaining())
        except FutureTimeoutError:
            future.cancel()
            breaker.record_failure()
            self._respond(
                504,
                {
                    "error": (
                        f"scoring owner {owner_id} exceeded the "
                        f"{self.server.request_timeout:.1f}s budget"
                    )
                },
            )
            return
        except UnknownOwnerError as error:
            breaker.record_success()  # the service itself is healthy
            self._respond(404, {"error": str(error)})
            return
        except UnknownMeasureError as error:
            breaker.record_success()  # client error, not a service fault
            self._respond(
                400,
                {"error": str(error), "measures": list(error.available)},
            )
            return
        except Exception as error:
            breaker.record_failure()
            self._respond(500, {"error": str(error)})
            return
        breaker.record_success()
        self._respond(200, record.to_dict())

    def _score_batch(self) -> None:
        """Score many owners, streaming one NDJSON line per owner.

        Every owner is submitted to the scheduler up front (so distinct
        owners score concurrently — across worker processes when the
        engine has a backend) and results are streamed back in request
        order as each future resolves.  A per-owner failure (unknown
        owner, backpressure, scoring error) becomes an ``error`` line;
        the stream itself only fails on circuit-open or a bad body.
        """
        body = self._json_body()
        if body is None:
            return
        owners = body.get("owners")
        if (
            not isinstance(owners, list)
            or not owners
            or not all(isinstance(o, int) and not isinstance(o, bool)
                       for o in owners)
        ):
            self._respond(
                400,
                {"error": 'body must be JSON like {"owners": [<id>, ...]}'},
            )
            return
        measure = self._measure_from_body(body)
        if measure is _INVALID_MEASURE:
            return
        breaker = self.server.breaker
        try:
            breaker.before_call()
        except Exception as error:
            self._respond(503, {"error": str(error)}, retry_after=1)
            return
        deadline = Deadline(self.server.request_timeout)
        submissions: list[tuple[int, Any]] = []
        for owner_id in owners:
            try:
                submissions.append(
                    (
                        owner_id,
                        self.server.scheduler.submit(owner_id, measure=measure),
                    )
                )
            except BackpressureError as error:
                submissions.append((owner_id, error))
        # NDJSON stream: no Content-Length is possible, so the connection
        # closes when the batch ends.
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        failed = False
        for owner_id, pending in submissions:
            if isinstance(pending, BackpressureError):
                line: dict[str, Any] = {
                    "owner": owner_id,
                    "error": str(pending),
                    "status": 429 if pending.saturated else 503,
                }
                failed = True
            else:
                try:
                    record = pending.result(timeout=deadline.remaining())
                except FutureTimeoutError:
                    pending.cancel()
                    line = {
                        "owner": owner_id,
                        "error": (
                            f"scoring owner {owner_id} exceeded the "
                            f"{self.server.request_timeout:.1f}s budget"
                        ),
                        "status": 504,
                    }
                    failed = True
                except UnknownOwnerError as error:
                    line = {"owner": owner_id, "error": str(error),
                            "status": 404}
                except Exception as error:
                    line = {"owner": owner_id, "error": str(error),
                            "status": 500}
                    failed = True
                else:
                    line = record.to_dict()
            self.wfile.write(json.dumps(line).encode("utf-8") + b"\n")
            self.wfile.flush()
        if failed:
            breaker.record_failure()
        else:
            breaker.record_success()

    # ------------------------------------------------------------------
    # migration handoff (driven by the router's rebalance coordinator)
    # ------------------------------------------------------------------
    def _owners_list_from_body(self, body: dict[str, Any]) -> list[int] | None:
        owners = body.get("owners")
        if (
            not isinstance(owners, list)
            or not all(isinstance(o, int) and not isinstance(o, bool)
                       for o in owners)
        ):
            self._respond(
                400,
                {"error": 'body must be JSON like {"owners": [<id>, ...]}'},
            )
            return None
        return owners

    def _slice_export(self) -> None:
        body = self._json_body()
        if body is None:
            return
        owners = self._owners_list_from_body(body)
        if owners is None:
            return
        try:
            document = export_slice(self.server.engine.store, owners)
        except UnknownOwnerError as error:
            self._respond(404, {"error": str(error)})
            return
        self._respond(200, document)

    def _slice_import(self) -> None:
        body = self._json_body()
        if body is None:
            return
        document = body.get("slice")
        if not isinstance(document, dict):
            self._respond(
                400,
                {"error": 'body must be JSON like {"slice": {...}}'},
            )
            return
        try:
            result = import_slice(
                self.server.engine.store,
                document,
                adopt_graph=bool(body.get("adopt_graph")),
            )
        except RebalanceError as error:
            # digest mismatch or unsupported slice: the migration must
            # abort, not silently import divergent state
            self._respond(409, {"error": str(error), "phase": error.phase})
            return
        except WalError as error:
            self._respond(500, {"error": str(error)})
            return
        except (KeyError, TypeError, ValueError, SerializationError) as error:
            self._respond(400, {"error": f"malformed slice: {error}"})
            return
        self._respond(200, result)

    def _slice_detach(self) -> None:
        body = self._json_body()
        if body is None:
            return
        owners = self._owners_list_from_body(body)
        if owners is None:
            return
        try:
            result = detach_slice(self.server.engine.store, owners)
        except WalError as error:
            self._respond(500, {"error": str(error)})
            return
        # drop stale memoized scores so detached owners stop pinning
        # their graphs in this shard's cache
        self.server.engine.invalidate_many(owners)
        self._respond(200, result)

    def _slice_digest(self) -> None:
        body = self._json_body()
        if body is None:
            return
        owners = self._owners_list_from_body(body)
        if owners is None:
            return
        self._respond(200, state_digest(self.server.engine.store, owners))

    # ------------------------------------------------------------------
    # request parsing
    # ------------------------------------------------------------------
    def _owner_from_query(self, query: dict[str, list[str]]) -> int | None:
        values = query.get("owner")
        if not values:
            self._respond(400, {"error": "missing ?owner=<id>"})
            return None
        try:
            return int(values[0])
        except ValueError:
            self._respond(400, {"error": f"invalid owner id {values[0]!r}"})
            return None

    def _json_body(self) -> dict[str, Any] | None:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._respond(400, {"error": "body must be a JSON object"})
            return None
        if not isinstance(body, dict):
            self._respond(400, {"error": "body must be a JSON object"})
            return None
        return body

    def _owner_from_body(self, body: dict[str, Any]) -> int | None:
        if "owner" not in body:
            self._respond(
                400, {"error": 'body must be JSON like {"owner": <id>}'}
            )
            return None
        owner_id = body["owner"]
        try:
            return int(owner_id)
        except (ValueError, TypeError):
            self._respond(400, {"error": f"invalid owner id {owner_id!r}"})
            return None

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _respond(
        self,
        status: int,
        document: dict[str, Any],
        retry_after: int | None = None,
    ) -> None:
        payload = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Suppress per-request access logs unless the server is verbose."""
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)


def build_server(
    engine: RiskEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    max_workers: int = 4,
    max_pending: int = 64,
    request_timeout: float = 60.0,
    breaker: CircuitBreaker | None = None,
    state: ServiceState | None = None,
    background_refresh: bool = False,
) -> RiskServiceServer:
    """Wire engine → scheduler → HTTP server (port 0 = ephemeral).

    ``background_refresh=True`` additionally attaches a
    :class:`~repro.service.refresh.RefreshScheduler` to the engine's
    store, so mutations enqueue their invalidated owners for ahead-of-
    demand rescoring in idle scheduler slots.
    """
    scheduler = ScoreScheduler(
        engine, max_workers=max_workers, max_pending=max_pending
    )
    refresher = None
    if background_refresh:
        from .refresh import RefreshScheduler

        refresher = RefreshScheduler(scheduler).attach(engine.store)
    return RiskServiceServer(
        (host, port),
        engine,
        scheduler,
        request_timeout=request_timeout,
        breaker=breaker,
        state=state,
        refresher=refresher,
    )


__all__ = [
    "MeasureParsingMixin",
    "RiskServiceHandler",
    "RiskServiceServer",
    "ServiceState",
    "build_server",
]
