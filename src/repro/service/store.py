"""Versioned owner registry backing the risk-scoring service.

The batch harness (:func:`repro.experiments.run_study`) treats the graph
as a frozen snapshot; a serving deployment cannot — friendships arrive,
profiles change, new strangers appear while scores are being consumed.
:class:`OwnerStore` is the mutation boundary that makes this safe: every
graph or profile delta goes through the store, which maps the touched
users to the owners whose 2-hop world they belong to and bumps those
owners' *graph versions*.  The engine keys its caches on
``(owner, version)``, so a bump is exactly a cache invalidation — and
only for the affected owners.

Ego networks in a generated cohort are disjoint, so each user starts out
in exactly one owner's universe; edges added later may join universes,
and the store widens membership accordingly (an endpoint of a new edge
becomes 2-hop-visible to the other endpoint's owners).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from typing import Mapping

from ..errors import UnknownOwnerError
from ..graph.metrics import ns_dirty_after_edge_toggle
from ..graph.profile import Profile
from ..graph.social_graph import SocialGraph
from ..synth.owners import SimulatedOwner
from ..synth.population import StudyPopulation
from ..types import RiskLabel, UserId
from .dirty import EMPTY_DELTA, FULL_DELTA, DirtyDelta, DirtyLog


@dataclass
class OwnerEntry:
    """One registered owner: identity, cohort position, and freshness.

    ``index`` is the owner's position in the registration order; it
    drives the per-owner session seed (``base_seed + index``), mirroring
    :func:`repro.experiments.run_study`'s enumeration so served scores
    reproduce the batch study.  ``version`` counts the deltas that have
    touched this owner's universe since registration; ``dirty`` records
    *what* each of those bumps could have changed (bounded, see
    :class:`~repro.service.dirty.DirtyLog`).
    """

    owner: SimulatedOwner
    index: int
    version: int = 0
    universe: set[UserId] = field(default_factory=set)
    labels: dict[UserId, RiskLabel] = field(default_factory=dict)
    dirty: DirtyLog = field(default_factory=DirtyLog)


class OwnerStore:
    """Thread-safe registry of owners over one shared social graph.

    All mutations of the underlying graph must go through the store so
    that owner versions stay truthful.  Reads of the graph itself are
    lock-free (scoring holds no store lock while it computes).
    """

    def __init__(self, graph: SocialGraph) -> None:
        self._graph = graph
        self._entries: dict[UserId, OwnerEntry] = {}
        self._user_owners: dict[UserId, set[UserId]] = {}
        self._lock = threading.RLock()
        self._mutation_listeners: list = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_population(
        cls,
        population: StudyPopulation,
        shard_map=None,
        shard_index: int | None = None,
    ) -> "OwnerStore":
        """Register every owner of a generated cohort.

        Each owner's universe is seeded from the generator's handle:
        the owner, their friends, and their strangers.

        With ``shard_map``/``shard_index`` (a
        :class:`~repro.service.sharding.ShardMap` and this worker's shard
        number) only the owners the map assigns to this shard are
        registered — but each keeps its **global** cohort index, so the
        per-owner session seed (``base_seed + index``) and every served
        digest match the unsharded deployment exactly.
        """
        if (shard_map is None) != (shard_index is None):
            raise ValueError(
                "shard_map and shard_index must be given together"
            )
        store = cls(population.graph)
        for global_index, owner in enumerate(population.owners):
            if (
                shard_map is not None
                and shard_map.shard_of(owner.user_id) != shard_index
            ):
                continue
            handle = population.handles[owner.user_id]
            universe = {owner.user_id, *handle.friends, *handle.strangers}
            store.register(owner, universe=universe, index=global_index)
        return store

    def register(
        self,
        owner: SimulatedOwner,
        universe: set[UserId] | frozenset[UserId] | None = None,
        index: int | None = None,
    ) -> OwnerEntry:
        """Register one owner.

        ``index`` is the owner's cohort position, which derives the
        per-owner session seed; it defaults to the registration order.
        Sharded stores pass the owner's *global* cohort index explicitly
        so a shard's scores match the unsharded deployment.
        """
        with self._lock:
            entry = OwnerEntry(
                owner=owner,
                index=len(self._entries) if index is None else int(index),
                universe=set(universe or {owner.user_id}),
            )
            self._entries[owner.user_id] = entry
            for user in entry.universe:
                self._user_owners.setdefault(user, set()).add(owner.user_id)
            return entry

    # ------------------------------------------------------------------
    # migration (live rebalancing moves whole entries between shards)
    # ------------------------------------------------------------------
    def attach_entry(self, entry: OwnerEntry) -> OwnerEntry:
        """Adopt a fully-formed entry migrated from another shard.

        Unlike :meth:`register`, nothing is derived here: the entry's
        cohort ``index``, ``version``, ``universe``, ``labels``, and the
        owner's accumulated ground truth arrive exactly as they were on
        the source shard, so the per-owner session seed and every digest
        survive the move.  Idempotent: re-attaching an owner replaces the
        previous entry (migration replays must converge, not error).
        """
        with self._lock:
            self._detach_locked(entry.owner.user_id)
            self._entries[entry.owner.user_id] = entry
            for user in entry.universe:
                self._user_owners.setdefault(user, set()).add(
                    entry.owner.user_id
                )
            return entry

    def detach_owner(self, owner_id: UserId) -> bool:
        """Drop one owner's entry (it now lives on another shard).

        Returns whether the owner was present — a no-op ``False`` rather
        than an error when absent, again so migration replays converge.
        The shared graph is untouched: every shard keeps the full graph,
        only ownership moves.
        """
        with self._lock:
            return self._detach_locked(owner_id)

    def _detach_locked(self, owner_id: UserId) -> bool:
        entry = self._entries.pop(owner_id, None)
        if entry is None:
            return False
        for user in entry.universe:
            owners = self._user_owners.get(user)
            if owners is not None:
                owners.discard(owner_id)
                if not owners:
                    del self._user_owners[user]
        return True

    def replace_graph(self, graph: SocialGraph) -> None:
        """Swap in a replacement graph (migration graph adoption).

        A shard joining mid-life booted from the seed cohort and missed
        every broadcast mutation since; importing a slice hands it the
        source's current graph wholesale.  Callers must ensure no entry's
        universe refers to users absent from ``graph``.

        Every owner's dirty log is cleared: deltas recorded against the
        old graph say nothing about the new one, and an empty log makes
        ``dirty_between`` answer ``None`` (full-recompute fallback).
        """
        with self._lock:
            self._graph = graph
            for entry in self._entries.values():
                entry.dirty.clear()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> SocialGraph:
        """The shared social graph (mutate only via the store)."""
        return self._graph

    def owner_ids(self) -> tuple[UserId, ...]:
        """Registered owner ids in registration order."""
        with self._lock:
            return tuple(self._entries)

    def get(self, owner_id: UserId) -> OwnerEntry:
        """The entry for ``owner_id``; raises :class:`UnknownOwnerError`."""
        with self._lock:
            try:
                return self._entries[owner_id]
            except KeyError:
                raise UnknownOwnerError(owner_id) from None

    def version(self, owner_id: UserId) -> int:
        """Current graph version of one owner."""
        return self.get(owner_id).version

    def owners_of(self, user_id: UserId) -> frozenset[UserId]:
        """Owners whose universe contains ``user_id``."""
        with self._lock:
            return frozenset(self._user_owners.get(user_id, ()))

    def universe(self, owner_id: UserId) -> frozenset[UserId]:
        """An immutable snapshot of one owner's universe.

        Used to carve the picklable subgraph a
        :class:`~repro.service.workers.ScoreJob` ships to a worker
        process; raises :class:`UnknownOwnerError` for unknown owners.
        """
        with self._lock:
            try:
                entry = self._entries[owner_id]
            except KeyError:
                raise UnknownOwnerError(owner_id) from None
            return frozenset(entry.universe)

    # ------------------------------------------------------------------
    # mutations (each bumps the affected owners' versions)
    # ------------------------------------------------------------------
    def add_user(self, profile: Profile, owner_id: UserId) -> None:
        """Add a new user to the graph, inside one owner's universe.

        The dirty delta is profile-only: an edgeless user is nobody's
        2-hop contact yet, so no stranger's ``NS`` moved.
        """
        with self._lock:
            entry = self.get(owner_id)
            self._graph.add_user(profile)
            entry.universe.add(profile.user_id)
            self._user_owners.setdefault(profile.user_id, set()).add(owner_id)
            delta = DirtyDelta(profiles=frozenset({profile.user_id}))
            self._bump(frozenset({owner_id}), lambda _: delta)
        self._notify(frozenset({owner_id}))

    def update_profile(self, profile: Profile) -> frozenset[UserId]:
        """Replace a user's profile; returns the owners invalidated.

        Profile edits never move ``NS`` (a structural measure), so the
        dirty delta marks only the user's profile: benefits, Squeezer
        clusters, and classifier edge weights of pools containing the
        user are what a warm re-score must refresh.
        """
        with self._lock:
            self._graph.add_user(profile)
            delta = DirtyDelta(profiles=frozenset({profile.user_id}))
            affected = self._bump(
                self.owners_of(profile.user_id), lambda _: delta
            )
        self._notify(affected)
        return affected

    def add_friendship(self, a: UserId, b: UserId) -> frozenset[UserId]:
        """Create the edge ``{a, b}``; returns the owners invalidated.

        Both endpoints join the universe of every affected owner: a new
        edge can pull the far endpoint into 2-hop view.  Every user the
        edge newly pulls into an affected owner's 2-hop world — which on
        a cross-ego edge includes the far endpoint's whole friend list —
        gets a lazily derived ground-truth judgment
        (:meth:`~repro.synth.owners.SimulatedOwner.judge_new_stranger`),
        so the next warm re-score's oracle has an answer instead of
        erroring.  The judgments are per-pair seeded, hence identical
        across shard topologies and WAL replays.

        Each affected owner's dirty delta is the exact NS perturbation
        of the toggled edge
        (:func:`~repro.graph.metrics.ns_dirty_after_edge_toggle`);
        owners who are themselves an endpoint get a full delta.
        """
        with self._lock:
            affected = self.owners_of(a) | self.owners_of(b)
            self._graph.add_friendship(a, b)
            for owner_id in affected:
                entry = self._entries[owner_id]
                for user in (a, b):
                    if user not in entry.universe:
                        entry.universe.add(user)
                        self._user_owners.setdefault(user, set()).add(owner_id)
                self._extend_ground_truth(entry)
            self._bump(affected, self._edge_delta(a, b))
        self._notify(affected)
        return affected

    def _extend_ground_truth(self, entry: OwnerEntry) -> None:
        """Judge (and adopt) strangers newly visible to one owner.

        Sorted iteration keeps the extension order deterministic; the
        judgments themselves are order-free (seeded per pair), so this
        only matters for reproducible ground-truth dict layouts.
        """
        owner = entry.owner
        newly_visible = (
            self._graph.two_hop_neighbors(owner.user_id)
            - owner.ground_truth.keys()
        )
        for stranger in sorted(newly_visible):
            owner.judge_new_stranger(self._graph, stranger)
            if stranger not in entry.universe:
                entry.universe.add(stranger)
                self._user_owners.setdefault(stranger, set()).add(
                    owner.user_id
                )

    def remove_friendship(self, a: UserId, b: UserId) -> frozenset[UserId]:
        """Remove the edge ``{a, b}``; returns the owners invalidated.

        Dirty accounting mirrors :meth:`add_friendship`: the exact NS
        perturbation of the toggled edge (``N(a) ∩ N(b)`` is invariant
        under the toggle, so deriving it after the removal is identical
        to before).
        """
        with self._lock:
            self._graph.remove_friendship(a, b)
            affected = self._bump(
                self.owners_of(a) | self.owners_of(b),
                self._edge_delta(a, b),
            )
        self._notify(affected)
        return affected

    def grant_labels(
        self, owner_id: UserId, labels: Mapping[UserId, int]
    ) -> int:
        """Record oracle-granted owner labels; returns how many were new.

        Labels are the scarcest resource in the paper's loop (3 per
        round), so the store keeps every grant.  Granting does *not*
        bump the owner's version — labels never stale a score, they are
        a by-product of computing one.
        """
        with self._lock:
            entry = self.get(owner_id)
            new = 0
            for stranger, label in sorted(labels.items()):
                value = RiskLabel(int(label))
                if entry.labels.get(int(stranger)) != value:
                    entry.labels[int(stranger)] = value
                    new += 1
            return new

    def touch(self, owner_id: UserId) -> int:
        """Manually invalidate one owner; returns the new version.

        A manual bump carries no delta information, so its dirty entry
        is *full* — the next warm re-score revalidates everything (and
        still reuses any pool whose recomputed inputs come out equal).
        """
        with self._lock:
            entry = self.get(owner_id)
            self._bump(frozenset({owner_id}), lambda _: FULL_DELTA)
            version = entry.version
        self._notify(frozenset({owner_id}))
        return version

    # ------------------------------------------------------------------
    # dirty-set / mutation-listener plumbing
    # ------------------------------------------------------------------
    def dirty_between(
        self, owner_id: UserId, since_version: int
    ) -> DirtyDelta | None:
        """Merged dirty delta covering ``(since_version, current]``.

        ``None`` means the owner's log cannot vouch for the whole range
        (evicted entries, or an entry that predates the log — e.g. a
        freshly migrated owner): the caller must treat the gap as full.
        Raises :class:`UnknownOwnerError` for unknown owners.
        """
        with self._lock:
            entry = self.get(owner_id)
            return entry.dirty.between(since_version, entry.version)

    def add_mutation_listener(self, listener) -> None:
        """Register ``listener(owner_ids)`` to run after each mutation.

        Listeners fire outside the store lock, on the mutating thread,
        with the frozenset of invalidated owners — the hook the
        background refresh scheduler uses to enqueue rescoring work.
        Listeners must not raise; exceptions are swallowed so a broken
        observer can never fail a mutation that already happened.
        """
        with self._lock:
            self._mutation_listeners.append(listener)

    def _notify(self, owner_ids: frozenset[UserId]) -> None:
        if not owner_ids:
            return
        for listener in list(self._mutation_listeners):
            try:
                listener(owner_ids)
            except Exception:  # pragma: no cover - defensive
                pass

    def _edge_delta(self, a: UserId, b: UserId):
        """Per-owner delta factory for an edge toggle (lock held)."""

        def derive(owner_id: UserId) -> DirtyDelta:
            dirty = ns_dirty_after_edge_toggle(self._graph, owner_id, a, b)
            if dirty is None:
                return FULL_DELTA
            return DirtyDelta(ns=dirty)

        return derive

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> list[dict[str, object]]:
        """JSON-ready per-owner summary for the ``/owners`` endpoint."""
        with self._lock:
            return [
                {
                    "owner": owner_id,
                    "version": entry.version,
                    "universe_size": len(entry.universe),
                    "labels_granted": len(entry.labels),
                    "confidence": entry.owner.confidence,
                }
                for owner_id, entry in self._entries.items()
            ]

    def _bump(
        self, owner_ids: frozenset[UserId], delta_for=None
    ) -> frozenset[UserId]:
        """Bump versions, recording each bump's dirty delta.

        ``delta_for(owner_id)`` derives the per-owner delta; ``None``
        (unknown provenance) records a conservative full delta.
        """
        for owner_id in owner_ids:
            entry = self._entries[owner_id]
            entry.version += 1
            delta = FULL_DELTA if delta_for is None else delta_for(owner_id)
            entry.dirty.record(entry.version, delta)
        return owner_ids

    def has_owner(self, owner_id: UserId) -> bool:
        """Whether ``owner_id`` is registered on this store."""
        with self._lock:
            return owner_id in self._entries


__all__ = ["OwnerEntry", "OwnerStore"]
