"""Asyncio JSON HTTP front-end over the risk engine.

:class:`AsyncRiskServer` speaks the exact same routes and status-code
contract as the threaded :class:`~repro.service.http.RiskServiceServer`
(see that module's docstring for the endpoint catalogue) while replacing
thread-per-request with a single event loop:

* **bounded admission** — every work-bearing request (``/score``,
  ``/score-batch``, ``/mutate``) first claims a slot in a fixed-size
  :class:`AdmissionQueue`.  A full queue sheds the request explicitly
  with *429 + Retry-After* instead of growing an unbounded accept
  backlog; ``/metrics`` reports depth, peak, and shed counts.
* **request coalescing** — ``/score`` goes through
  :meth:`~repro.service.scheduler.ScoreScheduler.submit_coalesced`:
  concurrent hits for the same ``(owner, measure, version)`` share one
  engine call and the result fans out to every waiter.  Coalesced
  futures are awaited behind :func:`asyncio.shield` so one waiter's
  deadline cannot cancel work its neighbors still need.
* **group-committed WAL** — mutations run on a small thread pool (the
  event loop must never block on an fsync) and, under
  ``--wal-fsync group``, concurrent mutations pile into one
  :meth:`~repro.service.wal.WriteAheadLog.wait_durable` barrier: one
  fsync per batch, each request acked only after its batch is durable.

Byte-for-byte route parity with the threaded server is pinned by
``tests/service/test_async_http.py`` (same digests for every measure,
same status codes for every error shape); ``serve`` without ``--async``
still runs the legacy threaded server untouched.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _STATUS_REASONS
from typing import Any
from urllib.parse import parse_qs, urlparse

from ..errors import (
    BackpressureError,
    GraphError,
    RebalanceError,
    SerializationError,
    UnknownMeasureError,
    UnknownOwnerError,
    UnknownUserError,
    WalError,
)
from ..measures import measure_catalog
from ..resilience import CircuitBreaker, Deadline
from .engine import RiskEngine
from .http import _INVALID_MEASURE, MeasureParsingMixin, ServiceState
from .scheduler import ScoreScheduler
from .wal import (
    MUTATION_OPS,
    DurableOwnerStore,
    detach_slice,
    export_slice,
    import_slice,
    mutate_store,
    state_digest,
)

#: Threads for blocking store work (mutations, slice ops).  Sized well
#: above typical mutation concurrency so simultaneous requests block in
#: :meth:`~repro.service.wal.WriteAheadLog.wait_durable` together —
#: that pile-up is what a group commit amortizes into one fsync.
_MUTATE_POOL_SIZE = 32


class AdmissionQueue:
    """Fixed-capacity admission gate for work-bearing requests.

    Touched only from the event-loop thread, so plain integers suffice.
    ``try_enter`` claims a slot (or refuses — the caller sheds with 429),
    ``leave`` releases it when the request finishes, however it ends.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"admission capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.depth = 0
        self.peak = 0
        self.admitted = 0
        self.shed = 0

    def try_enter(self) -> bool:
        """Claim a slot; ``False`` means full (shed the request)."""
        if self.depth >= self.capacity:
            self.shed += 1
            return False
        self.depth += 1
        self.admitted += 1
        if self.depth > self.peak:
            self.peak = self.depth
        return True

    def leave(self) -> None:
        """Release a slot claimed by :meth:`try_enter`."""
        self.depth -= 1

    def snapshot(self) -> dict[str, int]:
        """JSON-ready counters for ``/metrics``."""
        return {
            "capacity": self.capacity,
            "depth": self.depth,
            "peak": self.peak,
            "admitted": self.admitted,
            "shed": self.shed,
        }


class _Request:
    """One parsed HTTP/1.1 request off an asyncio stream."""

    __slots__ = ("method", "target", "version", "headers", "body")

    def __init__(
        self,
        method: str,
        target: str,
        version: str,
        headers: dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.target = target
        self.version = version
        self.headers = headers
        self.body = body

    @property
    def wants_close(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection != "keep-alive"
        return connection == "close"


class _RequestHandler(MeasureParsingMixin):
    """Serves one request; mirrors ``RiskServiceHandler`` route by route.

    The response is buffered into the stream writer synchronously
    (``_respond``), so the :class:`MeasureParsingMixin` validation
    helpers work unchanged; the connection loop drains the writer after
    :meth:`handle` returns.
    """

    def __init__(
        self,
        server: "AsyncRiskServer",
        request: _Request,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.request = request
        self.writer = writer
        self.close_connection = request.wants_close

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def handle(self) -> None:
        """Dispatch one request to its endpoint."""
        if self.request.method == "GET":
            await self._do_get()
        elif self.request.method == "POST":
            await self._do_post()
        else:
            self._respond(
                501,
                {"error": f"unsupported method {self.request.method!r}"},
            )

    async def _do_get(self) -> None:
        parsed = urlparse(self.request.target)
        if parsed.path == "/healthz":
            self._respond(200, self._health_document())
        elif parsed.path == "/readyz":
            self._readyz()
        elif parsed.path == "/metrics":
            self._respond(200, self._metrics_document())
        elif parsed.path == "/owners":
            self._respond(
                200, {"owners": self.server.engine.owners_overview()}
            )
        elif parsed.path == "/measures":
            self._respond(200, {"measures": measure_catalog()})
        elif parsed.path == "/score":
            if self._reject_while_draining():
                return
            if not self._admit():
                return
            try:
                query = parse_qs(parsed.query)
                owner_id = self._owner_from_query(query)
                if owner_id is None:
                    return
                measure = self._measure_from_values(query.get("measure"))
                if measure is not _INVALID_MEASURE:
                    await self._score(owner_id, measure)
            finally:
                self.server.admission.leave()
        else:
            self._respond(404, {"error": f"unknown path {parsed.path!r}"})

    async def _do_post(self) -> None:
        parsed = urlparse(self.request.target)
        if parsed.path == "/score":
            if self._reject_while_draining():
                return
            if not self._admit():
                return
            try:
                body = self._json_body()
                if body is None:
                    return
                owner_id = self._owner_from_body(body)
                if owner_id is None:
                    return
                measure = self._measure_from_body(body)
                if measure is not _INVALID_MEASURE:
                    await self._score(owner_id, measure)
            finally:
                self.server.admission.leave()
        elif parsed.path == "/score-batch":
            if self._reject_while_draining():
                return
            if not self._admit():
                return
            try:
                await self._score_batch()
            finally:
                self.server.admission.leave()
        elif parsed.path == "/mutate":
            if self._reject_while_draining():
                return
            if not self._admit():
                return
            try:
                await self._mutate()
            finally:
                self.server.admission.leave()
        elif parsed.path == "/slice/export":
            await self._slice_export()
        elif parsed.path == "/slice/import":
            await self._slice_import()
        elif parsed.path == "/slice/detach":
            await self._slice_detach()
        elif parsed.path == "/slice/digest":
            await self._slice_digest()
        else:
            self._respond(404, {"error": f"unknown path {parsed.path!r}"})

    # ------------------------------------------------------------------
    # admission / lifecycle gates
    # ------------------------------------------------------------------
    def _admit(self) -> bool:
        """Claim an admission slot, shedding with 429 when full."""
        admission = self.server.admission
        if admission.try_enter():
            return True
        self._respond(
            429,
            {
                "error": (
                    f"admission queue full: {admission.depth} requests "
                    f"in flight (bound {admission.capacity})"
                ),
                "pending": admission.depth,
            },
            retry_after=1,
        )
        return False

    def _reject_while_draining(self) -> bool:
        if self.server.state.draining:
            self._respond(
                503,
                {
                    "error": "service is draining",
                    "pending": self.server.scheduler.pending_count(),
                },
                retry_after=1,
            )
            return True
        return False

    # ------------------------------------------------------------------
    # read endpoints (identical documents to the threaded server)
    # ------------------------------------------------------------------
    def _health_document(self) -> dict[str, Any]:
        store = self.server.engine.store
        document: dict[str, Any] = {
            "status": "ok",
            "owners": len(store.owner_ids()),
            "breaker": self.server.breaker.state,
            "draining": self.server.state.draining,
        }
        if isinstance(store, DurableOwnerStore):
            document["recovery"] = store.recovery.to_dict()
            document["last_seq"] = store.last_seq
        return document

    def _readyz(self) -> None:
        state = self.server.state
        accepting = self.server.scheduler.accepting
        ready = state.ready and not state.draining and accepting
        document = {
            "ready": ready,
            "detail": state.detail,
            "draining": state.draining,
            "scheduler_accepting": accepting,
            "pending": self.server.scheduler.pending_count(),
        }
        self._respond(200 if ready else 503, document)

    def _metrics_document(self) -> dict[str, Any]:
        document = {
            "engine": self.server.engine.metrics.snapshot(),
            "scheduler": self.server.scheduler.snapshot(),
            "breaker": self.server.breaker.snapshot(),
            "admission": self.server.admission.snapshot(),
        }
        store = self.server.engine.store
        if isinstance(store, DurableOwnerStore):
            document["wal"] = store.wal.stats()
        backend = getattr(self.server.engine, "backend", None)
        if backend is not None and hasattr(backend, "stats"):
            document["workers"] = backend.stats()
        refresher = getattr(self.server, "refresher", None)
        if refresher is not None:
            document["refresh"] = refresher.snapshot()
        return document

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    async def _score(self, owner_id: int, measure: str | None = None) -> None:
        breaker = self.server.breaker
        try:
            breaker.before_call()
        except Exception as error:
            self._respond(503, {"error": str(error)}, retry_after=1)
            return
        deadline = Deadline(self.server.request_timeout)
        try:
            future, coalesced = self.server.scheduler.submit_coalesced(
                owner_id, measure=measure
            )
        except BackpressureError as error:
            breaker.record_failure()
            # saturation asks the client to slow down (429); a draining
            # or shut-down scheduler is an outage to fail over from (503)
            self._respond(
                429 if error.saturated else 503,
                {"error": str(error), "pending": error.pending},
                retry_after=1,
            )
            return
        wrapped = asyncio.wrap_future(future)
        # a coalesced future is shared with other waiters: retrieve its
        # exception on completion so an abandoned (timed-out) wait never
        # logs "exception was never retrieved"
        wrapped.add_done_callback(
            lambda done: done.cancelled() or done.exception()
        )
        try:
            record = await asyncio.wait_for(
                asyncio.shield(wrapped), deadline.remaining()
            )
        except (asyncio.TimeoutError, TimeoutError):
            if not coalesced:
                future.cancel()
            breaker.record_failure()
            self._respond(
                504,
                {
                    "error": (
                        f"scoring owner {owner_id} exceeded the "
                        f"{self.server.request_timeout:.1f}s budget"
                    )
                },
            )
            return
        except UnknownOwnerError as error:
            breaker.record_success()  # the service itself is healthy
            self._respond(404, {"error": str(error)})
            return
        except UnknownMeasureError as error:
            breaker.record_success()  # client error, not a service fault
            self._respond(
                400,
                {"error": str(error), "measures": list(error.available)},
            )
            return
        except Exception as error:
            breaker.record_failure()
            self._respond(500, {"error": str(error)})
            return
        breaker.record_success()
        self._respond(200, record.to_dict())

    async def _score_batch(self) -> None:
        """Score many owners, streaming one NDJSON line per owner."""
        body = self._json_body()
        if body is None:
            return
        owners = body.get("owners")
        if (
            not isinstance(owners, list)
            or not owners
            or not all(
                isinstance(o, int) and not isinstance(o, bool) for o in owners
            )
        ):
            self._respond(
                400,
                {"error": 'body must be JSON like {"owners": [<id>, ...]}'},
            )
            return
        measure = self._measure_from_body(body)
        if measure is _INVALID_MEASURE:
            return
        breaker = self.server.breaker
        try:
            breaker.before_call()
        except Exception as error:
            self._respond(503, {"error": str(error)}, retry_after=1)
            return
        deadline = Deadline(self.server.request_timeout)
        submissions: list[tuple[int, Any, bool]] = []
        for owner_id in owners:
            try:
                future, coalesced = self.server.scheduler.submit_coalesced(
                    owner_id, measure=measure
                )
                submissions.append((owner_id, future, coalesced))
            except BackpressureError as error:
                submissions.append((owner_id, error, False))
        # NDJSON stream: no Content-Length is possible, so the
        # connection closes when the batch ends.
        self.writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        self.close_connection = True
        failed = False
        for owner_id, pending, coalesced in submissions:
            if isinstance(pending, BackpressureError):
                line: dict[str, Any] = {
                    "owner": owner_id,
                    "error": str(pending),
                    "status": 429 if pending.saturated else 503,
                }
                failed = True
            else:
                wrapped = asyncio.wrap_future(pending)
                wrapped.add_done_callback(
                    lambda done: done.cancelled() or done.exception()
                )
                try:
                    record = await asyncio.wait_for(
                        asyncio.shield(wrapped), deadline.remaining()
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    if not coalesced:
                        pending.cancel()
                    line = {
                        "owner": owner_id,
                        "error": (
                            f"scoring owner {owner_id} exceeded the "
                            f"{self.server.request_timeout:.1f}s budget"
                        ),
                        "status": 504,
                    }
                    failed = True
                except UnknownOwnerError as error:
                    line = {
                        "owner": owner_id,
                        "error": str(error),
                        "status": 404,
                    }
                except Exception as error:
                    line = {
                        "owner": owner_id,
                        "error": str(error),
                        "status": 500,
                    }
                    failed = True
                else:
                    line = record.to_dict()
            self.writer.write(json.dumps(line).encode("utf-8") + b"\n")
            await self.writer.drain()
        if failed:
            breaker.record_failure()
        else:
            breaker.record_success()

    # ------------------------------------------------------------------
    # mutations (blocking WAL work runs off-loop, on the mutate pool)
    # ------------------------------------------------------------------
    async def _mutate(self) -> None:
        body = self._json_body()
        if body is None:
            return
        op = body.get("op")
        if op not in MUTATION_OPS:
            self._respond(
                400,
                {"error": f"unknown op {op!r}", "ops": list(MUTATION_OPS)},
            )
            return
        store = self.server.engine.store
        try:
            result = await self._run_blocking(mutate_store, store, op, body)
        except (UnknownUserError, UnknownOwnerError) as error:
            self._respond(404, {"error": str(error)})
        except (GraphError, SerializationError) as error:
            self._respond(400, {"error": str(error)})
        except (KeyError, TypeError, ValueError) as error:
            self._respond(
                400, {"error": f"malformed arguments for {op!r}: {error}"}
            )
        except WalError as error:
            # not acknowledged: under "always" the append failed before
            # the mutation applied; under "group" the fsync barrier
            # failed after it applied in memory, poisoning the log —
            # either way the client must not treat the mutation as
            # durable, and a poisoned server needs a restart + recovery
            self._respond(500, {"error": str(error)})
        else:
            self._respond(200, result)

    async def _run_blocking(self, fn, *args):
        """Run blocking store work on the mutate pool.

        Keeping fsyncs (and the group-commit barrier wait) off the
        event loop is what lets concurrent mutations actually overlap —
        the pile-up inside ``wait_durable`` is the group being
        committed.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self.server.mutate_pool, lambda: fn(*args)
        )

    # ------------------------------------------------------------------
    # migration handoff (parity with the threaded server)
    # ------------------------------------------------------------------
    def _owners_list_from_body(
        self, body: dict[str, Any]
    ) -> list[int] | None:
        owners = body.get("owners")
        if not isinstance(owners, list) or not all(
            isinstance(o, int) and not isinstance(o, bool) for o in owners
        ):
            self._respond(
                400,
                {"error": 'body must be JSON like {"owners": [<id>, ...]}'},
            )
            return None
        return owners

    async def _slice_export(self) -> None:
        body = self._json_body()
        if body is None:
            return
        owners = self._owners_list_from_body(body)
        if owners is None:
            return
        try:
            document = await self._run_blocking(
                export_slice, self.server.engine.store, owners
            )
        except UnknownOwnerError as error:
            self._respond(404, {"error": str(error)})
            return
        self._respond(200, document)

    async def _slice_import(self) -> None:
        body = self._json_body()
        if body is None:
            return
        document = body.get("slice")
        if not isinstance(document, dict):
            self._respond(
                400, {"error": 'body must be JSON like {"slice": {...}}'}
            )
            return
        try:
            result = await self._run_blocking(
                lambda: import_slice(
                    self.server.engine.store,
                    document,
                    adopt_graph=bool(body.get("adopt_graph")),
                )
            )
        except RebalanceError as error:
            self._respond(409, {"error": str(error), "phase": error.phase})
            return
        except WalError as error:
            self._respond(500, {"error": str(error)})
            return
        except (KeyError, TypeError, ValueError, SerializationError) as error:
            self._respond(400, {"error": f"malformed slice: {error}"})
            return
        self._respond(200, result)

    async def _slice_detach(self) -> None:
        body = self._json_body()
        if body is None:
            return
        owners = self._owners_list_from_body(body)
        if owners is None:
            return
        try:
            result = await self._run_blocking(
                detach_slice, self.server.engine.store, owners
            )
        except WalError as error:
            self._respond(500, {"error": str(error)})
            return
        self.server.engine.invalidate_many(owners)
        self._respond(200, result)

    async def _slice_digest(self) -> None:
        body = self._json_body()
        if body is None:
            return
        owners = self._owners_list_from_body(body)
        if owners is None:
            return
        self._respond(
            200,
            await self._run_blocking(
                state_digest, self.server.engine.store, owners
            ),
        )

    # ------------------------------------------------------------------
    # request parsing
    # ------------------------------------------------------------------
    def _owner_from_query(self, query: dict[str, list[str]]) -> int | None:
        values = query.get("owner")
        if not values:
            self._respond(400, {"error": "missing ?owner=<id>"})
            return None
        try:
            return int(values[0])
        except ValueError:
            self._respond(400, {"error": f"invalid owner id {values[0]!r}"})
            return None

    def _json_body(self) -> dict[str, Any] | None:
        try:
            body = json.loads(self.request.body.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._respond(400, {"error": "body must be a JSON object"})
            return None
        if not isinstance(body, dict):
            self._respond(400, {"error": "body must be a JSON object"})
            return None
        return body

    def _owner_from_body(self, body: dict[str, Any]) -> int | None:
        if "owner" not in body:
            self._respond(
                400, {"error": 'body must be JSON like {"owner": <id>}'}
            )
            return None
        owner_id = body["owner"]
        try:
            return int(owner_id)
        except (ValueError, TypeError):
            self._respond(400, {"error": f"invalid owner id {owner_id!r}"})
            return None

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _respond(
        self,
        status: int,
        document: dict[str, Any],
        retry_after: int | None = None,
    ) -> None:
        payload = json.dumps(document).encode("utf-8")
        reason = _STATUS_REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
        ]
        if retry_after is not None:
            head.append(f"Retry-After: {retry_after}")
        if self.close_connection:
            head.append("Connection: close")
        self.writer.write(
            "\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + payload
        )


class AsyncRiskServer:
    """Asyncio HTTP server bound to one engine and scheduler.

    Lifecycle-compatible with the threaded
    :class:`~repro.service.http.RiskServiceServer` so ``serve_main`` and
    the tests drive either interchangeably: :meth:`serve_forever` blocks
    (run it on a thread), :attr:`url` waits for the listener to bind,
    :meth:`shutdown` stops the loop from any thread, and
    :meth:`server_close` releases the mutate pool.
    """

    def __init__(
        self,
        address: tuple[str, int],
        engine: RiskEngine,
        scheduler: ScoreScheduler,
        request_timeout: float = 60.0,
        breaker: CircuitBreaker | None = None,
        quiet: bool = True,
        state: ServiceState | None = None,
        refresher=None,
        admission_capacity: int = 256,
    ) -> None:
        self._host, self._port = address
        self.engine = engine
        self.scheduler = scheduler
        self.request_timeout = request_timeout
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=5, recovery_time=5.0
        )
        self.quiet = quiet
        self.state = state or ServiceState()
        self.refresher = refresher
        self.admission = AdmissionQueue(admission_capacity)
        self.mutate_pool = ThreadPoolExecutor(
            max_workers=_MUTATE_POOL_SIZE, thread_name_prefix="wal-commit"
        )
        self._bound = threading.Event()
        self._stopped = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._shutdown_requested = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """The server's base URL; blocks briefly until the port binds."""
        if not self._bound.wait(timeout=10):
            raise RuntimeError("async server never bound its listener")
        return f"http://{self._host}:{self._port}"

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown`; call on a thread."""
        try:
            asyncio.run(self._serve())
        finally:
            self._stopped.set()
            self._bound.set()  # unblock url() waiters even on bind failure

    def shutdown(self) -> None:
        """Stop the loop from any thread; waits for it to exit."""
        self._shutdown_requested = True
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None:
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:  # loop already closed
                pass
        if not self._stopped.is_set() and self._loop is not None:
            self._stopped.wait(timeout=5)

    def server_close(self) -> None:
        """Release the mutate pool (after :meth:`shutdown`)."""
        self.mutate_pool.shutdown(wait=False)

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if self._shutdown_requested:  # shut down before the loop started
            return
        server = await asyncio.start_server(
            self._handle_client, self._host, self._port
        )
        self._port = server.sockets[0].getsockname()[1]
        self._bound.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                handler = _RequestHandler(self, request, writer)
                await handler.handle()
                await writer.drain()
                if handler.close_connection:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            TimeoutError,
        ):
            pass  # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> _Request | None:
        """Parse one request off the stream; ``None`` ends the connection."""
        try:
            request_line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            writer.write(
                b"HTTP/1.1 400 Bad Request\r\n"
                b"Content-Length: 0\r\nConnection: close\r\n\r\n"
            )
            return None
        method, target, version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        body = await reader.readexactly(length) if length else b""
        return _Request(method, target, version, headers, body)


def build_async_server(
    engine: RiskEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    max_workers: int = 4,
    max_pending: int = 64,
    request_timeout: float = 60.0,
    breaker: CircuitBreaker | None = None,
    state: ServiceState | None = None,
    background_refresh: bool = False,
    admission_capacity: int = 256,
) -> AsyncRiskServer:
    """Wire engine → scheduler → asyncio server (port 0 = ephemeral).

    The async twin of :func:`~repro.service.http.build_server`, with one
    extra knob: ``admission_capacity`` bounds concurrently admitted
    work-bearing requests (beyond it, 429 + ``Retry-After``).
    """
    scheduler = ScoreScheduler(
        engine, max_workers=max_workers, max_pending=max_pending
    )
    refresher = None
    if background_refresh:
        from .refresh import RefreshScheduler

        refresher = RefreshScheduler(scheduler).attach(engine.store)
    return AsyncRiskServer(
        (host, port),
        engine,
        scheduler,
        request_timeout=request_timeout,
        breaker=breaker,
        state=state,
        refresher=refresher,
        admission_capacity=admission_capacity,
    )


__all__ = [
    "AdmissionQueue",
    "AsyncRiskServer",
    "build_async_server",
]
