"""Process-pool scoring backend: cold scores on every core.

The scoring pipeline — NS over thousands of strangers per owner,
Squeezer passes, and the harmonic solve — is pure-Python/numpy and
GIL-bound, so :class:`~repro.service.ScoreScheduler`'s thread pool only
scales cache hits.  This module moves the *cold* path into worker
processes:

* :class:`ScoreJob` — a picklable recipe for one owner's cold score: the
  owner, the study parameters, and the owner's universe as an induced
  subgraph (profiles + edges).  The subgraph is exact by construction —
  an ego session only ever touches the owner, their friends, their
  2-hop strangers, and the edges among them — so a job executed in a
  fresh process is byte-identical to the inline pipeline;
* :func:`execute_score_job` / :func:`execute_owner_run_job` — the worker
  entry points (module-level, hence picklable under any start method);
* :class:`ProcessPoolBackend` — dispatches jobs over a
  ``ProcessPoolExecutor``, rehydrates and digest-checks every result,
  retries a crashed worker's job once on a fresh pool, and reports
  per-worker utilization for ``/metrics``.

The backend plugs into :class:`~repro.service.RiskEngine` via its
``backend=`` parameter (``repro-study serve --score-workers N``) and
into :func:`repro.experiments.run_study` via ``workers=N``
(``repro-study --workers N``).  Serial execution remains the default.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Callable, Iterable, Sequence

from ..config import PipelineConfig
from ..errors import ServiceError, WorkerCrashError, WorkerIntegrityError
from ..faults import FaultPlan, ServiceFaultInjector
from ..graph.profile import Profile
from ..graph.social_graph import SocialGraph
from ..graph.visibility import stranger_visibility_vector
from ..io.serialization import result_digest
from ..learning.results import SessionResult
from ..measures import DEFAULT_MEASURE, MeasureRequest, get_measure
from ..resilience import RetryPolicy
from ..synth.owners import SimulatedOwner
from ..types import UserId

#: Exit code a worker dies with when a job's crash hook fires (tests and
#: the chaos CLI use it to tell an injected crash from a real one).
WORKER_CRASH_EXIT_CODE = 25


@dataclass(frozen=True)
class ScoreJob:
    """Everything a worker process needs to cold-score one owner.

    The job is a *value*: no oracle closures, no live graph references.
    The oracle is rebuilt in the worker from the owner's ground truth via
    :func:`repro.experiments.plan_owner_session`, exactly as the batch
    study builds it, so the derived seed (``seed + index``) and every
    downstream random stream match the serial run.

    ``profiles``/``edges`` carry the owner's universe as an induced
    subgraph.  That subgraph reproduces the inline pipeline exactly:
    friends and 2-hop strangers are all inside the universe, NS only
    inspects mutual friends (a subset of the owner's friends) and the
    edges among them, and visibility uses the fixed owner-stranger
    distance of 2.
    """

    owner: SimulatedOwner
    index: int
    version: int
    pooling: str
    classifier: str
    config: PipelineConfig | None
    seed: int
    use_owner_confidence: bool
    profiles: tuple[Profile, ...]
    edges: tuple[tuple[UserId, UserId], ...]
    fault_plan: FaultPlan | None = None
    retry_policy: RetryPolicy | None = None
    #: Chaos hook: when true the worker dies via ``os._exit`` before
    #: scoring, modeling an OOM-killed or segfaulted worker.  Set by the
    #: backend when a :class:`~repro.faults.ServiceFaultInjector` plans a
    #: crash for this dispatch; never set on retries.
    crash_worker: bool = False
    #: Which registered risk measure the worker runs.  Resolved through
    #: the measure registry inside the worker process — builtins
    #: register at import, so a spawned worker sees the same menu.
    measure: str = DEFAULT_MEASURE

    @classmethod
    def from_universe(
        cls,
        owner: SimulatedOwner,
        index: int,
        graph: SocialGraph,
        universe: Iterable[UserId],
        *,
        version: int = 0,
        pooling: str = "npp",
        classifier: str = "harmonic",
        config: PipelineConfig | None = None,
        seed: int = 0,
        use_owner_confidence: bool = True,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        measure: str = DEFAULT_MEASURE,
    ) -> "ScoreJob":
        """Snapshot one owner's universe off the live graph into a job.

        The universe is widened to the owner's *current* friends and
        2-hop strangers so a job built after graph mutations still
        contains everything the session will touch (a new edge can pull
        users into 2-hop view before the store has widened membership).
        """
        owner_id = owner.user_id
        members = set(universe)
        members.add(owner_id)
        members |= graph.friends(owner_id)
        members |= graph.two_hop_neighbors(owner_id)
        ordered = sorted(members)
        profiles = tuple(graph.profile(user) for user in ordered)
        edges = tuple(
            (user, friend)
            for user in ordered
            for friend in sorted(graph.friends(user) & members)
            if user < friend
        )
        return cls(
            owner=owner,
            index=index,
            version=version,
            pooling=pooling,
            classifier=classifier,
            config=config,
            seed=seed,
            use_owner_confidence=use_owner_confidence,
            profiles=profiles,
            edges=edges,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            measure=measure,
        )

    def subgraph(self) -> SocialGraph:
        """Rebuild the owner's universe as a standalone graph."""
        return SocialGraph.from_edges(self.profiles, self.edges)

    def measure_request(self, graph: SocialGraph) -> MeasureRequest:
        """The measure-agnostic request this job describes, over ``graph``."""
        return MeasureRequest(
            graph=graph,
            owner=self.owner,
            index=self.index,
            pooling=self.pooling,
            classifier=self.classifier,
            config=self.config,
            seed=self.seed,
            use_owner_confidence=self.use_owner_confidence,
            fault_plan=self.fault_plan,
            retry_policy=self.retry_policy,
        )

    def build_plan(self):
        """Derive the session plan exactly as :func:`run_study` does."""
        # Imported here: repro.experiments imports the service layer's
        # consumers, so a module-level import would be circular.
        from ..experiments.study import plan_owner_session

        return plan_owner_session(
            self.owner,
            self.index,
            pooling=self.pooling,  # type: ignore[arg-type]
            classifier=self.classifier,
            config=self.config,
            seed=self.seed,
            use_owner_confidence=self.use_owner_confidence,
            fault_plan=self.fault_plan,
            retry_policy=self.retry_policy,
        )


@dataclass(frozen=True)
class ScoreOutcome:
    """A worker's answer: the result plus integrity and accounting data.

    ``measure`` names the registry entry that produced (and can
    re-digest) ``result``; ``new_queries`` is the measure's own oracle
    accounting (label requests for the default measure, 0 for the
    deterministic ones).
    """

    owner_id: UserId
    version: int
    result: Any
    digest: str
    elapsed_seconds: float
    worker_pid: int
    measure: str = DEFAULT_MEASURE
    new_queries: int = 0


@dataclass(frozen=True)
class StudyOutcome:
    """A worker's answer for a full study job (one ``OwnerRun``)."""

    run: Any  # OwnerRun; typed loosely to avoid the circular import
    digest: str
    elapsed_seconds: float
    worker_pid: int

    @property
    def result(self) -> SessionResult:
        """The session result inside the run (digest-check target)."""
        return self.run.result


def execute_score_job(job: ScoreJob) -> ScoreOutcome:
    """Worker entry point: run one cold score from a job.

    Pure function of the job — no shared state with the parent — so the
    result is byte-identical to the inline pipeline for the same inputs.
    The job's measure is resolved through the registry; for the default
    ``stranger`` measure this is exactly the historical
    ``build_plan().build_session().run()`` path.
    """
    if job.crash_worker:
        os._exit(WORKER_CRASH_EXIT_CODE)
    start = time.perf_counter()
    graph = job.subgraph()
    score = get_measure(job.measure).compute(job.measure_request(graph))
    return ScoreOutcome(
        owner_id=job.owner.user_id,
        version=job.version,
        result=score.result,
        digest=score.digest,
        elapsed_seconds=time.perf_counter() - start,
        worker_pid=os.getpid(),
        measure=job.measure,
        new_queries=score.new_queries,
    )


def execute_owner_run_job(job: ScoreJob) -> StudyOutcome:
    """Worker entry point for :func:`run_study`'s parallel owner loop.

    Mirrors the serial loop's per-owner block: similarities, benefits,
    visibility vectors, then the session run — in the same order, from
    the same derived seed.
    """
    if job.crash_worker:
        os._exit(WORKER_CRASH_EXIT_CODE)
    from ..experiments.study import OwnerRun

    start = time.perf_counter()
    graph = job.subgraph()
    session = job.build_plan().build_session(graph)
    similarities = session.compute_similarities()
    benefits = session.compute_benefits()
    visibility = {
        stranger: stranger_visibility_vector(
            graph, job.owner.user_id, stranger
        )
        for stranger in session.ego.strangers
    }
    result = session.run()
    run = OwnerRun(
        owner=job.owner,
        result=result,
        similarities=similarities,
        benefits=benefits,
        visibility=visibility,
        profiles=session.ego.stranger_profiles(),
    )
    return StudyOutcome(
        run=run,
        digest=result_digest(result),
        elapsed_seconds=time.perf_counter() - start,
        worker_pid=os.getpid(),
    )


def _warm_probe(index: int) -> int:
    """No-op worker task used to pre-spawn the pool before timing."""
    return os.getpid()


class ProcessPoolBackend:
    """Executes :class:`ScoreJob`\\ s in worker processes.

    Parameters
    ----------
    max_workers:
        Worker process count.
    start_method:
        ``multiprocessing`` start method.  ``"spawn"`` (the default) is
        safe to drive from the scheduler's threads; ``"fork"`` starts
        faster but inherits the parent's thread-held locks.
    max_retries:
        How many times a job whose worker crashed is retried on a fresh
        pool before :class:`~repro.errors.WorkerCrashError` surfaces.
    injector:
        Optional :class:`~repro.faults.ServiceFaultInjector`; its
        ``worker_crash_at_job`` plan kills the chosen dispatch's worker.
    clock:
        Monotonic time source for utilization accounting (injectable).

    Thread-safe: scheduler threads call :meth:`run_job` concurrently.
    A crashed worker breaks the whole ``ProcessPoolExecutor`` (every
    in-flight future fails with ``BrokenProcessPool``); the backend
    replaces the pool once per break and retries each affected job, so a
    crash never leaves a caller with a hung future.
    """

    def __init__(
        self,
        max_workers: int,
        *,
        start_method: str = "spawn",
        max_retries: int = 1,
        injector: ServiceFaultInjector | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        if max_retries < 0:
            raise ServiceError(f"max_retries must be >= 0, got {max_retries}")
        self._max_workers = max_workers
        self._start_method = start_method
        self._max_retries = max_retries
        self._injector = injector
        self._clock = clock
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self._generation = 0
        self._started_at = clock()
        self._dispatched = 0
        self._completed = 0
        self._retries = 0
        self._crashes = 0
        self._integrity_failures = 0
        self._per_worker: dict[int, dict[str, float]] = {}
        self._shutdown = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def max_workers(self) -> int:
        """Configured worker process count."""
        return self._max_workers

    def warm_up(self, timeout: float | None = 60.0) -> frozenset[int]:
        """Pre-spawn every worker; returns the worker pids seen.

        Spawned workers import the package lazily on first use; calling
        this before a timed section keeps interpreter start-up out of
        throughput numbers.
        """
        pool, _ = self._ensure_pool()
        probes = [
            pool.submit(_warm_probe, index)
            for index in range(self._max_workers)
        ]
        return frozenset(probe.result(timeout=timeout) for probe in probes)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool; subsequent jobs fail with ``ServiceError``."""
        with self._lock:
            self._shutdown = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def run_job(
        self,
        job: ScoreJob,
        runner: Callable[[ScoreJob], Any] = execute_score_job,
    ) -> Any:
        """Execute one job, retrying a crashed worker on a fresh pool.

        Raises
        ------
        WorkerCrashError
            When the job's worker died on every attempt.
        WorkerIntegrityError
            When a rehydrated result fails its digest check.
        ServiceError
            When the backend is shut down.
        """
        return self._run_with_retries(job, runner, self._max_retries + 1)

    def map_jobs(
        self,
        jobs: Sequence[ScoreJob],
        runner: Callable[[ScoreJob], Any] = execute_score_job,
    ) -> list[Any]:
        """Execute many jobs concurrently, results in submission order.

        A crashed worker fails every in-flight future of the shared pool;
        each affected job is retried (up to ``max_retries`` times) on the
        replacement pool, in order, so the returned list always lines up
        with ``jobs``.
        """
        submitted = [self._dispatch(runner, job, retry=False) for job in jobs]
        outcomes: list[Any] = []
        for job, (future, generation) in zip(jobs, submitted):
            try:
                outcomes.append(self._accept(future.result()))
            except BrokenExecutor:
                self._note_broken_pool(generation)
                outcomes.append(
                    self._run_with_retries(
                        job, runner, self._max_retries, first_is_retry=True
                    )
                )
        return outcomes

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """JSON-ready utilization snapshot for ``/metrics``.

        ``per_worker`` maps worker pid to job count, busy seconds, and
        utilization (busy seconds over the backend's wall-clock age).
        """
        with self._lock:
            wall = max(self._clock() - self._started_at, 1e-9)
            return {
                "workers": self._max_workers,
                "start_method": self._start_method,
                "jobs_dispatched": self._dispatched,
                "jobs_completed": self._completed,
                "retries": self._retries,
                "worker_crashes": self._crashes,
                "integrity_failures": self._integrity_failures,
                "pool_generation": self._generation,
                "per_worker": {
                    str(pid): {
                        "jobs": int(entry["jobs"]),
                        "busy_seconds": round(entry["busy_seconds"], 4),
                        "utilization": round(
                            min(entry["busy_seconds"] / wall, 1.0), 4
                        ),
                    }
                    for pid, entry in sorted(self._per_worker.items())
                },
            }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _run_with_retries(
        self,
        job: ScoreJob,
        runner: Callable[[ScoreJob], Any],
        attempts: int,
        first_is_retry: bool = False,
    ) -> Any:
        last_error: BaseException | None = None
        for attempt in range(attempts):
            if attempt or first_is_retry:
                with self._lock:
                    self._retries += 1
            future, generation = self._dispatch(
                runner, job, retry=attempt > 0 or first_is_retry
            )
            try:
                outcome = future.result()
            except BrokenExecutor as error:
                self._note_broken_pool(generation)
                last_error = error
                continue
            return self._accept(outcome)
        raise WorkerCrashError(
            f"cold score of owner {job.owner.user_id} crashed its worker "
            f"{max(attempts, 1)} time(s); giving up"
        ) from last_error

    def _ensure_pool(self) -> tuple[ProcessPoolExecutor, int]:
        with self._lock:
            if self._shutdown:
                raise ServiceError("process-pool backend is shut down")
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self._max_workers,
                    mp_context=get_context(self._start_method),
                )
            return self._pool, self._generation

    def _dispatch(
        self,
        runner: Callable[[ScoreJob], Any],
        job: ScoreJob,
        *,
        retry: bool,
    ) -> tuple["Future[Any]", int]:
        pool, generation = self._ensure_pool()
        with self._lock:
            self._dispatched += 1
            index = self._dispatched
        # A planned crash fires on its dispatch index only — a retry is a
        # new dispatch on a fresh worker and must be allowed to succeed.
        if (
            not retry
            and not job.crash_worker
            and self._injector is not None
            and self._injector.should_crash_worker(index)
        ):
            job = dataclasses.replace(job, crash_worker=True)
        try:
            return pool.submit(runner, job), generation
        except RuntimeError as error:  # pool shut down under us
            raise ServiceError(
                "process-pool backend is shut down"
            ) from error

    def _note_broken_pool(self, generation: int) -> None:
        """Replace a broken pool exactly once per break."""
        with self._lock:
            if self._generation != generation:
                return  # another thread already replaced this pool
            self._generation += 1
            self._crashes += 1
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def _accept(self, outcome: Any) -> Any:
        """Digest-check a rehydrated result and record accounting.

        The check dispatches through the outcome's measure when it has
        one (:class:`ScoreOutcome`); :class:`StudyOutcome` predates the
        measure subsystem and always carries a session result.
        """
        measure_name = getattr(outcome, "measure", None)
        if measure_name is None:
            expected = result_digest(outcome.result)
        else:
            expected = get_measure(measure_name).digest(outcome.result)
        if expected != outcome.digest:
            with self._lock:
                self._integrity_failures += 1
            raise WorkerIntegrityError(
                "worker result failed its digest check after rehydration "
                f"(worker pid {outcome.worker_pid})"
            )
        with self._lock:
            self._completed += 1
            entry = self._per_worker.setdefault(
                outcome.worker_pid, {"jobs": 0, "busy_seconds": 0.0}
            )
            entry["jobs"] += 1
            entry["busy_seconds"] += outcome.elapsed_seconds
        return outcome


__all__ = [
    "WORKER_CRASH_EXIT_CODE",
    "ProcessPoolBackend",
    "ScoreJob",
    "ScoreOutcome",
    "StudyOutcome",
    "execute_owner_run_job",
    "execute_score_job",
]
