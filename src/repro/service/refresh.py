"""Background refresh: rescore dirty owners ahead of demand.

The store knows the instant an owner goes stale (every mutation reports
the owners it invalidated); without this module, that knowledge sits
unused until the next ``/score`` request eats the warm-rescore latency
inline.  :class:`RefreshScheduler` closes the loop: it subscribes to the
store's mutation listeners, keeps a bounded ordered set of dirty owners,
and — whenever the serving scheduler has idle capacity — submits them
for rescoring so the next client hit is a cache hit.

Design points:

* **Demand traffic wins.**  The refresher only drains when the serving
  scheduler's pending count is at or below ``idle_threshold``, and each
  drain submits at most ``max_batch`` owners, so background work can
  never saturate the queue ahead of real requests.  A submission that
  still bounces off backpressure is requeued, not lost.
* **Coalescing.**  The queue is a set: ten rapid mutations of one owner
  cost one background rescore.  An owner re-dirtied while its refresh
  is in flight is simply re-enqueued (the engine's per-owner lock and
  version check make the extra pass cheap or a no-op).
* **Advisory only.**  Losing the refresher (or never starting one)
  changes nothing about correctness — scores stay versioned and warm
  on demand; this is purely ahead-of-time work, surfaced in
  ``/metrics`` under ``refresh``.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

from ..errors import BackpressureError
from ..types import UserId


class RefreshScheduler:
    """Daemon that rescoring-drains dirty owners during idle slots.

    Parameters
    ----------
    scheduler:
        The serving :class:`~repro.service.scheduler.ScoreScheduler`
        (anything with ``submit``, ``pending``, ``accepting``).
    idle_threshold:
        Drain only while ``scheduler.pending <= idle_threshold``.  The
        default ``0`` is the most deferential setting: refresh only on a
        completely quiet queue.
    max_batch:
        Owners submitted per drain pass; keeps each pass small so a
        burst of demand traffic reclaims the queue within one interval.
    interval:
        Seconds between idle checks when no mutation wakes the loop.
    """

    def __init__(
        self,
        scheduler,
        idle_threshold: int = 0,
        max_batch: int = 4,
        interval: float = 0.05,
    ) -> None:
        self._scheduler = scheduler
        self._idle_threshold = max(0, int(idle_threshold))
        self._max_batch = max(1, int(max_batch))
        self._interval = float(interval)
        # dict-as-ordered-set: first dirtied drains first
        self._queue: dict[UserId, None] = {}
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stopped = threading.Event()
        self.enqueued = 0
        self.refreshed = 0
        self.failed = 0
        self.requeued = 0
        self._thread = threading.Thread(
            target=self._loop, name="risk-refresh", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def notify(self, owner_ids: Iterable[UserId]) -> None:
        """Mark owners dirty (the store's mutation-listener hook)."""
        if self._stopped.is_set():
            return
        with self._lock:
            for owner_id in owner_ids:
                if owner_id not in self._queue:
                    self._queue[owner_id] = None
                    self.enqueued += 1
        self._wake.set()

    def attach(self, store) -> "RefreshScheduler":
        """Subscribe to a store's mutation stream; returns ``self``."""
        store.add_mutation_listener(self.notify)
        return self

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        """Owners currently waiting for a background rescore."""
        with self._lock:
            return len(self._queue)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready refresher state for the ``/metrics`` endpoint."""
        with self._lock:
            return {
                "queued": len(self._queue),
                "enqueued": self.enqueued,
                "refreshed": self.refreshed,
                "failed": self.failed,
                "requeued": self.requeued,
                "idle_threshold": self._idle_threshold,
                "max_batch": self._max_batch,
                "running": not self._stopped.is_set(),
            }

    def drain_wait(self, timeout: float = 5.0) -> bool:
        """Block until the dirty queue is empty and submitted work is
        done (test helper); returns whether it drained in time."""
        deadline = threading.Event()
        waiter = threading.Timer(timeout, deadline.set)
        waiter.daemon = True
        waiter.start()
        try:
            while not deadline.is_set():
                with self._lock:
                    empty = not self._queue
                if empty and self._scheduler.pending == 0:
                    return True
                self._stopped.wait(0.01)
            return False
        finally:
            waiter.cancel()

    def shutdown(self) -> None:
        """Stop the drain loop (idempotent; queued owners are dropped)."""
        self._stopped.set()
        self._wake.set()
        self._thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stopped.is_set():
            self._wake.wait(timeout=self._interval)
            self._wake.clear()
            if self._stopped.is_set():
                return
            self._drain_once()

    def _drain_once(self) -> None:
        if not getattr(self._scheduler, "accepting", True):
            return
        if self._scheduler.pending > self._idle_threshold:
            return
        batch: list[UserId] = []
        with self._lock:
            while self._queue and len(batch) < self._max_batch:
                owner_id = next(iter(self._queue))
                del self._queue[owner_id]
                batch.append(owner_id)
        for owner_id in batch:
            try:
                future = self._scheduler.submit(owner_id)
            except BackpressureError:
                # queue filled up (or shut down) under us: put it back
                with self._lock:
                    if owner_id not in self._queue:
                        self._queue[owner_id] = None
                        self.requeued += 1
                continue
            except Exception:
                with self._lock:
                    self.failed += 1
                continue
            future.add_done_callback(self._account)

    def _account(self, future) -> None:
        error = future.exception()
        with self._lock:
            if error is None:
                self.refreshed += 1
            else:
                self.failed += 1


__all__ = ["RefreshScheduler"]
