"""Concurrent multi-owner scoring with bounded, per-owner-ordered work.

:class:`ScoreScheduler` drives an engine from a thread pool under two
invariants a serving deployment needs:

* **per-owner serialization** — requests for the same owner run one at a
  time, in submission order (a warm re-score must see the previous
  score's labels, and two cold runs of one owner would duplicate oracle
  effort);
* **backpressure** — the number of in-flight plus queued requests is
  bounded; past the bound, :meth:`submit` fails fast with
  :class:`~repro.errors.BackpressureError` instead of queueing without
  limit.  The error's ``saturated`` flag tells the HTTP layer which
  status to speak: queue-full is *429, slow down* while shutdown/drain
  is *503, fail over*.

Different owners score concurrently up to ``max_workers``.

On top of those, :meth:`ScoreScheduler.submit_coalesced` adds **request
coalescing** (single-flight): concurrent requests for the same
``(owner, measure, version)`` share one in-flight future instead of
queueing N engine calls, and every waiter receives the identical
record.  The store *version* is part of the key, so a mutation that
lands mid-coalesce bumps the version and later requests miss the stale
entry — they see the post-mutation score, never a stale fan-out.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any

from ..errors import BackpressureError, ServiceError
from ..types import UserId


class ScoreScheduler:
    """Bounded worker pool serializing work per owner.

    Parameters
    ----------
    engine:
        Anything with ``score(owner_id) -> result``; normally a
        :class:`~repro.service.RiskEngine`.
    max_workers:
        Concurrent scoring threads.
    max_pending:
        Bound on in-flight plus queued requests (the backpressure knob).
    """

    def __init__(
        self,
        engine,
        max_workers: int = 4,
        max_pending: int = 64,
        executor: ThreadPoolExecutor | None = None,
    ) -> None:
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        if max_pending < 1:
            raise ServiceError(f"max_pending must be >= 1, got {max_pending}")
        self._engine = engine
        self._max_pending = max_pending
        self._executor = executor or ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="risk-score"
        )
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._pending = 0
        self._queues: dict[UserId, deque[tuple[Future, str | None]]] = {}
        self._busy: set[UserId] = set()
        self._shutdown = False
        self._draining = False
        # single-flight map, guarded by its own lock: done-callbacks can
        # fire synchronously on the submitting thread, and taking the
        # (non-reentrant) scheduler lock there would deadlock
        self._coalesce_lock = threading.Lock()
        self._inflight: dict[tuple[UserId, str | None, int], Future] = {}
        self._coalesced_hits = 0

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self, owner_id: UserId, measure: str | None = None
    ) -> "Future[Any]":
        """Enqueue one scoring request; returns a future for its record.

        ``measure`` names a registered risk measure; ``None`` keeps the
        engine's default.  Serialization stays per *owner* regardless of
        measure — a warm re-score of any measure must observe the store
        state its predecessor left behind.

        Raises
        ------
        BackpressureError
            When the bounded queue is full (``saturated=True``) or the
            pool is shut down (``saturated=False``).
        """
        with self._lock:
            if self._shutdown:
                raise BackpressureError(
                    "scheduler is shut down",
                    pending=self._pending,
                    saturated=False,
                )
            if self._pending >= self._max_pending:
                raise BackpressureError(
                    f"scheduler saturated: {self._pending} requests pending "
                    f"(bound {self._max_pending})",
                    pending=self._pending,
                )
            self._pending += 1
            future: Future = Future()
            if owner_id in self._busy:
                self._queues.setdefault(owner_id, deque()).append(
                    (future, measure)
                )
            else:
                self._busy.add(owner_id)
                self._executor.submit(self._run, owner_id, measure, future)
            return future

    def submit_coalesced(
        self, owner_id: UserId, measure: str | None = None
    ) -> "tuple[Future[Any], bool]":
        """Like :meth:`submit`, but single-flight per (owner, measure,
        version); returns ``(future, coalesced)``.

        A request arriving while an identical one — same owner, same
        resolved measure, same store version — is still in flight gets
        that request's future back (``coalesced=True``) instead of a
        fresh engine call; the one engine result fans out to every
        waiter.  The version in the key is what makes this safe against
        mutations: a mid-coalesce mutation bumps the owner's version,
        so later requests key differently and compute the new score.

        Callers sharing a coalesced future must not cancel it — their
        neighbors are waiting on it too (the async front-end shields it
        accordingly).  Engines without a ``store``/``version`` (duck-
        typed test fakes) fall back to a plain :meth:`submit`.

        Raises
        ------
        BackpressureError
            Only when a fresh submission is actually attempted; joining
            an in-flight request costs no queue slot.
        """
        key = self._coalesce_key(owner_id, measure)
        if key is not None:
            with self._coalesce_lock:
                shared = self._inflight.get(key)
                if shared is not None and not shared.done():
                    self._coalesced_hits += 1
                    return shared, True
        future = self.submit(owner_id, measure)
        if key is not None:
            with self._coalesce_lock:
                if key not in self._inflight:
                    self._inflight[key] = future
            future.add_done_callback(
                lambda done, key=key: self._uncoalesce(key, done)
            )
        return future, False

    def _coalesce_key(
        self, owner_id: UserId, measure: str | None
    ) -> tuple[UserId, str | None, int] | None:
        """The single-flight key, or ``None`` when the engine can't
        vouch for one (no store/version → coalescing disabled)."""
        store = getattr(self._engine, "store", None)
        resolve = getattr(self._engine, "resolve_measure", None)
        if store is None:
            return None
        try:
            version = store.version(owner_id)
        except Exception:
            # unknown owner (or a storeless fake): let the plain path
            # deliver the per-request error through its own future
            return None
        name = resolve(measure) if callable(resolve) else measure
        return (owner_id, name, version)

    def _uncoalesce(self, key, done: Future) -> None:
        with self._coalesce_lock:
            if self._inflight.get(key) is done:
                del self._inflight[key]

    def score(
        self,
        owner_id: UserId,
        timeout: float | None = None,
        measure: str | None = None,
    ):
        """Blocking convenience wrapper: submit and wait for the record."""
        return self.submit(owner_id, measure).result(timeout=timeout)

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """In-flight plus queued requests right now."""
        with self._lock:
            return self._pending

    @property
    def max_pending(self) -> int:
        """The backpressure bound."""
        return self._max_pending

    def pending_count(self) -> int:
        """In-flight plus queued requests — drain progress for the HTTP
        layer (identical to :attr:`pending`, but callable-shaped for
        duck-typed status reporters)."""
        return self.pending

    @property
    def accepting(self) -> bool:
        """Whether :meth:`submit` would currently accept new work."""
        with self._lock:
            return not self._shutdown

    def snapshot(self) -> dict[str, int | bool]:
        """JSON-ready scheduler state for the ``/metrics`` endpoint."""
        with self._coalesce_lock:
            coalesced_hits = self._coalesced_hits
            coalesce_inflight = len(self._inflight)
        with self._lock:
            return {
                "pending": self._pending,
                "max_pending": self._max_pending,
                "owners_in_flight": len(self._busy),
                "accepting": not self._shutdown,
                "draining": self._draining,
                "coalesced_hits": coalesced_hits,
                "coalesce_inflight": coalesce_inflight,
            }

    def shutdown(
        self,
        wait: bool = True,
        *,
        drain: bool = False,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Stop accepting work; returns a JSON-ready shutdown summary.

        With ``drain=False`` (the default, and the historical behavior)
        queued-but-not-started requests are failed with
        :class:`~repro.errors.BackpressureError` and only in-flight work
        is awaited (when ``wait``).  With ``drain=True`` the scheduler
        keeps dispatching the per-owner queues until every accepted
        request has completed — or ``timeout`` seconds pass, after which
        the remaining backlog is failed.

        The summary reports whether the drain completed, how much work
        was pending at each boundary, and — when the engine exposes
        ``metrics`` — a final engine-metrics snapshot, so callers can
        emit one last accounting line before exit.
        """
        with self._idle:
            self._shutdown = True
            self._draining = drain
            pending_at_signal = self._pending
        drained = True
        if drain and pending_at_signal:
            with self._idle:
                drained = self._idle.wait_for(
                    lambda: self._pending == 0, timeout=timeout
                )
        with self._idle:
            self._draining = False
            pending_at_exit = self._pending
        self._executor.shutdown(wait=wait and drained)
        summary: dict[str, Any] = {
            "drained": drained,
            "pending_at_signal": pending_at_signal,
            "pending_at_exit": pending_at_exit,
        }
        metrics = getattr(self._engine, "metrics", None)
        if metrics is not None and hasattr(metrics, "snapshot"):
            summary["engine_metrics"] = metrics.snapshot()
        return summary

    def __enter__(self) -> "ScoreScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _run(
        self, owner_id: UserId, measure: str | None, future: Future
    ) -> None:
        if not future.set_running_or_notify_cancel():
            self._finish(owner_id)
            return
        try:
            # The positional call keeps duck-typed engines (test fakes
            # with a plain ``score(owner_id)``) working measure-free.
            if measure is None:
                record = self._engine.score(owner_id)
            else:
                record = self._engine.score(owner_id, measure=measure)
        except BaseException as error:  # delivered via the future
            future.set_exception(error)
        else:
            future.set_result(record)
        finally:
            self._finish(owner_id)

    def _finish(self, owner_id: UserId) -> None:
        with self._lock:
            self._pending -= 1
            queue = self._queues.get(owner_id)
            if queue and (not self._shutdown or self._draining):
                next_future, next_measure = queue.popleft()
                if not queue:
                    del self._queues[owner_id]
                try:
                    self._executor.submit(
                        self._run, owner_id, next_measure, next_future
                    )
                except RuntimeError:
                    # Pool shut down (or killed) under us.  Nothing will
                    # ever run this owner's queue again, so fail *all* of
                    # it — failing only next_future would leave the rest
                    # counted in _pending forever and hang drain waiters.
                    orphans = [next_future]
                    orphans.extend(
                        entry[0] for entry in self._queues.pop(owner_id, ())
                    )
                    self._busy.discard(owner_id)
                    for orphan in orphans:
                        self._pending -= 1
                        orphan.set_exception(
                            BackpressureError(
                                "scheduler is shut down", saturated=False
                            )
                        )
                    if self._pending == 0:
                        self._idle.notify_all()
                return
            if queue:  # shutting down without drain: fail the backlog
                del self._queues[owner_id]
                for orphan, _ in queue:
                    self._pending -= 1
                    orphan.set_exception(
                        BackpressureError(
                            "scheduler is shut down", saturated=False
                        )
                    )
            self._busy.discard(owner_id)
            if self._pending == 0:
                self._idle.notify_all()


__all__ = ["ScoreScheduler"]
