"""The embeddable risk-scoring engine: memoized, versioned, warm-starting.

:class:`RiskEngine` turns the batch pipeline into a servable component.
Scores are memoized per ``(owner, graph_version)``: an unchanged owner is
served from cache; an owner whose graph changed since the last score is
re-scored *warm* through
:func:`repro.learning.incremental.continue_session`, reusing every owner
label already gathered instead of re-interrogating the oracle from
scratch; an owner never scored before pays the full cold cost.  Cold
scores are built from the same :class:`~repro.experiments.OwnerSessionPlan`
as :func:`repro.experiments.run_study`, so an engine score of a pristine
owner is byte-identical to the batch study (checked via
:func:`repro.io.result_digest`).

The engine is thread-safe: per-owner locks serialize concurrent scores of
the same owner while different owners score in parallel.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass
from typing import Any, Literal

from ..config import PipelineConfig
from ..experiments.study import plan_owner_session
from ..io.serialization import result_digest, session_result_to_dict
from ..learning.incremental import continue_session
from ..learning.results import SessionResult
from ..types import UserId
from .store import OwnerStore

#: How a score was produced: full pipeline, warm re-score, or memo.
ScoreSource = Literal["cold", "warm", "cache"]


@dataclass(frozen=True)
class ScoreRecord:
    """One served score: the result plus provenance and accounting."""

    owner_id: UserId
    version: int
    source: ScoreSource
    result: SessionResult
    digest: str
    reused_labels: int
    new_queries: int
    elapsed_seconds: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view for the ``/score`` endpoint."""
        return {
            "owner": self.owner_id,
            "version": self.version,
            "source": self.source,
            "digest": self.digest,
            "reused_labels": self.reused_labels,
            "new_queries": self.new_queries,
            "elapsed_seconds": self.elapsed_seconds,
            "labels": {
                str(stranger): int(label)
                for stranger, label in sorted(
                    self.result.final_labels().items()
                )
            },
            "session": session_result_to_dict(self.result),
        }


class EngineMetrics:
    """Thread-safe serving counters for the ``/metrics`` endpoint."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.cache_hits = 0
        self.cold_scores = 0
        self.warm_scores = 0
        self.errors = 0
        self.reused_labels = 0
        self.new_queries = 0
        self._latency: dict[str, list[float]] = {"cold": [], "warm": []}

    def record_hit(self) -> None:
        """Count one request served straight from the memo."""
        with self._lock:
            self.requests += 1
            self.cache_hits += 1

    def record_score(
        self, source: str, elapsed: float, reused: int, queries: int
    ) -> None:
        """Count one computed score and its latency/label accounting."""
        with self._lock:
            self.requests += 1
            if source == "cold":
                self.cold_scores += 1
            else:
                self.warm_scores += 1
            self._latency[source].append(elapsed)
            self.reused_labels += reused
            self.new_queries += queries

    def record_error(self) -> None:
        """Count one request that raised instead of scoring."""
        with self._lock:
            self.requests += 1
            self.errors += 1

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served straight from cache."""
        with self._lock:
            if self.requests == 0:
                return 0.0
            return self.cache_hits / self.requests

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of every counter."""
        with self._lock:
            def stats(samples: list[float]) -> dict[str, float] | None:
                if not samples:
                    return None
                return {
                    "count": len(samples),
                    "mean_seconds": sum(samples) / len(samples),
                    "max_seconds": max(samples),
                }

            requests = self.requests
            return {
                "requests": requests,
                "cache_hits": self.cache_hits,
                "cache_hit_rate": (
                    self.cache_hits / requests if requests else 0.0
                ),
                "cold_scores": self.cold_scores,
                "warm_scores": self.warm_scores,
                "errors": self.errors,
                "reused_labels": self.reused_labels,
                "new_queries": self.new_queries,
                "latency": {
                    "cold": stats(self._latency["cold"]),
                    "warm": stats(self._latency["warm"]),
                },
            }


class RiskEngine:
    """Versioned, memoizing scoring front of the learning pipeline.

    Parameters
    ----------
    store:
        The owner registry; its versions drive cache invalidation.
    pooling, classifier, config, seed, use_owner_confidence:
        Study parameters, with the same meaning (and defaults) as in
        :func:`repro.experiments.run_study`.  A cold engine score with a
        given ``seed`` equals the batch study's result for that owner.
    clock:
        Monotonic time source for latency accounting (injectable).
    """

    def __init__(
        self,
        store: OwnerStore,
        pooling: str = "npp",
        classifier: str = "harmonic",
        config: PipelineConfig | None = None,
        seed: int = 0,
        use_owner_confidence: bool = True,
        clock=time.perf_counter,
    ) -> None:
        self._store = store
        self._pooling = pooling
        self._classifier = classifier
        self._config = config
        self._seed = seed
        self._use_owner_confidence = use_owner_confidence
        self._clock = clock
        self._metrics = EngineMetrics()
        self._cache: dict[UserId, ScoreRecord] = {}
        self._owner_locks: dict[UserId, threading.Lock] = {}
        self._locks_guard = threading.Lock()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def store(self) -> OwnerStore:
        """The backing owner store."""
        return self._store

    @property
    def metrics(self) -> EngineMetrics:
        """Serving counters."""
        return self._metrics

    def cached(self, owner_id: UserId) -> ScoreRecord | None:
        """The memoized record for ``owner_id``, fresh or stale."""
        return self._cache.get(owner_id)

    def owners_overview(self) -> list[dict[str, Any]]:
        """Store snapshot annotated with cache state (``/owners``)."""
        overview = []
        for row in self._store.snapshot():
            cached = self._cache.get(row["owner"])
            row["cached_version"] = cached.version if cached else None
            row["cache_fresh"] = (
                cached is not None and cached.version == row["version"]
            )
            overview.append(row)
        return overview

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def score(self, owner_id: UserId) -> ScoreRecord:
        """Serve one owner's score, as cheaply as freshness allows.

        Cache hit → the memoized record.  Stale cache → warm re-score via
        :func:`~repro.learning.incremental.continue_session` (prior owner
        labels reused).  No cache → cold full-pipeline run, identical to
        the batch study.

        Raises
        ------
        UnknownOwnerError
            If ``owner_id`` is not registered with the store.
        """
        entry = self._store.get(owner_id)
        with self._owner_lock(owner_id):
            version = self._store.version(owner_id)
            cached = self._cache.get(owner_id)
            if cached is not None and cached.version == version:
                self._metrics.record_hit()
                # provenance of *this response*: served from memo, free
                return dataclasses.replace(
                    cached, source="cache", elapsed_seconds=0.0
                )
            try:
                record = self._compute(entry, version, cached)
            except Exception:
                self._metrics.record_error()
                raise
            self._cache[owner_id] = record
            # persist the oracle's label grants through the store: on a
            # WAL-backed store they survive a crash, which matters because
            # labels are the loop's scarcest resource (3 per round)
            granted = {
                stranger: label
                for pool in record.result.pool_results
                for stranger, label in pool.owner_labels.items()
            }
            if granted:
                self._store.grant_labels(owner_id, granted)
            self._metrics.record_score(
                record.source,
                record.elapsed_seconds,
                record.reused_labels,
                record.new_queries,
            )
            return record

    def invalidate(self, owner_id: UserId) -> None:
        """Drop the memoized record (the next score runs cold)."""
        with self._owner_lock(owner_id):
            self._cache.pop(owner_id, None)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _compute(
        self, entry, version: int, cached: ScoreRecord | None
    ) -> ScoreRecord:
        plan = plan_owner_session(
            entry.owner,
            entry.index,
            pooling=self._pooling,
            classifier=self._classifier,
            config=self._config,
            seed=self._seed,
            use_owner_confidence=self._use_owner_confidence,
        )
        start = self._clock()
        if cached is not None:
            update = continue_session(
                self._store.graph,
                plan.owner_id,
                plan.oracle,
                cached.result,
                seed=plan.seed,
                **plan.session_kwargs,
            )
            result = update.result
            source: ScoreSource = "warm"
            reused, queries = update.reused_labels, update.new_queries
        else:
            result = plan.build_session(self._store.graph).run()
            source = "cold"
            reused, queries = 0, result.labels_requested
        elapsed = self._clock() - start
        return ScoreRecord(
            owner_id=entry.owner.user_id,
            version=version,
            source=source,
            result=result,
            digest=result_digest(result),
            reused_labels=reused,
            new_queries=queries,
            elapsed_seconds=elapsed,
        )

    def _owner_lock(self, owner_id: UserId) -> threading.Lock:
        with self._locks_guard:
            lock = self._owner_locks.get(owner_id)
            if lock is None:
                lock = self._owner_locks[owner_id] = threading.Lock()
            return lock


__all__ = ["EngineMetrics", "RiskEngine", "ScoreRecord", "ScoreSource"]
