"""The embeddable risk-scoring engine: memoized, versioned, warm-starting.

:class:`RiskEngine` turns the batch pipeline into a servable component.
Scoring dispatches through the pluggable measure registry
(:mod:`repro.measures`); the default measure is the paper's stranger
pipeline.  Scores are memoized per ``(owner, measure, graph_version)``:
an unchanged owner is
served from cache; an owner whose graph changed since the last score is
re-scored *warm* through
:func:`repro.learning.incremental.continue_session`, reusing every owner
label already gathered instead of re-interrogating the oracle from
scratch; an owner never scored before pays the full cold cost.  Cold
scores are built from the same :class:`~repro.experiments.OwnerSessionPlan`
as :func:`repro.experiments.run_study`, so an engine score of a pristine
owner is byte-identical to the batch study (checked via
:func:`repro.io.result_digest`).

Cold scores optionally run out-of-process: pass a
:class:`~repro.service.workers.ProcessPoolBackend` as ``backend`` and the
engine ships each cold score to a worker process as a picklable
:class:`~repro.service.workers.ScoreJob`, rehydrating and digest-checking
the result.  Warm re-scores and cache hits stay in-process (they need the
memoized prior result).

The engine is thread-safe: per-owner locks serialize concurrent scores of
the same owner while different owners score in parallel.  The memo and
the lock table are LRU-bounded (``max_cached_owners``) so a long-running
server's memory stays flat; a lock is never dropped while any thread
holds or waits on it.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Literal

from ..config import PipelineConfig
from ..errors import ServiceError, UnknownMeasureError, UnknownOwnerError
from ..measures import DEFAULT_MEASURE, MeasureRequest, get_measure
from ..types import UserId
from .dirty import DirtyDelta, EMPTY_DELTA
from .store import OwnerStore

#: How a score was produced: full pipeline, warm re-score, or memo.
ScoreSource = Literal["cold", "warm", "cache"]


@dataclass(frozen=True)
class ScoreRecord:
    """One served score: the result plus provenance and accounting.

    ``result`` is whatever the record's measure computes — a
    :class:`~repro.learning.results.SessionResult` for the default
    ``stranger`` measure, a JSON-ready report for the others; the
    measure also owns the result-specific blocks of :meth:`to_dict`.
    """

    owner_id: UserId
    version: int
    source: ScoreSource
    result: Any
    digest: str
    reused_labels: int
    new_queries: int
    elapsed_seconds: float
    measure: str = DEFAULT_MEASURE

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view for the ``/score`` endpoint."""
        document: dict[str, Any] = {
            "owner": self.owner_id,
            "version": self.version,
            "source": self.source,
            "measure": self.measure,
            "digest": self.digest,
            "reused_labels": self.reused_labels,
            "new_queries": self.new_queries,
            "elapsed_seconds": self.elapsed_seconds,
        }
        document.update(get_measure(self.measure).describe(self.result))
        return document


class _LatencyAccumulator:
    """Full-run count/mean/max plus a bounded window of recent samples.

    A long-running server records millions of latencies; keeping every
    sample is an unbounded leak.  The accumulator folds each sample into
    running aggregates (count, total, max — exact over the full run) and
    retains only the last ``window`` samples for recency stats.
    """

    __slots__ = ("count", "total", "max_value", "recent")

    def __init__(self, window: int) -> None:
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0
        self.recent: deque[float] = deque(maxlen=window)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        self.recent.append(value)

    def stats(self) -> dict[str, float] | None:
        if not self.count:
            return None
        recent = list(self.recent)
        return {
            "count": self.count,
            "mean_seconds": self.total / self.count,
            "max_seconds": self.max_value,
            "recent_mean_seconds": sum(recent) / len(recent),
        }


class EngineMetrics:
    """Thread-safe serving counters for the ``/metrics`` endpoint.

    Latency accounting is bounded: per-source running aggregates stay
    exact over the whole run while only ``latency_window`` recent samples
    are retained (see :class:`_LatencyAccumulator`).
    """

    def __init__(self, latency_window: int = 512) -> None:
        if latency_window < 1:
            raise ServiceError(
                f"latency_window must be >= 1, got {latency_window}"
            )
        self._lock = threading.Lock()
        self.requests = 0
        self.cache_hits = 0
        self.cold_scores = 0
        self.warm_scores = 0
        self.errors = 0
        self.reused_labels = 0
        self.new_queries = 0
        self.cache_evictions = 0
        self.incremental_scores = 0
        self._incremental_totals: dict[str, int] = {
            "full_runs": 0,
            "ns_reused": 0,
            "ns_recomputed": 0,
            "benefits_reused": 0,
            "benefits_recomputed": 0,
            "groups_reused": 0,
            "pools_reused": 0,
            "pools_rerun": 0,
        }
        self._latency_window = latency_window
        self._latency: dict[str, _LatencyAccumulator] = {
            "cold": _LatencyAccumulator(latency_window),
            "warm": _LatencyAccumulator(latency_window),
        }
        self._measures: dict[str, dict[str, Any]] = {}

    def _measure_block(self, measure: str) -> dict[str, Any]:
        """Per-measure counters, created on first touch (lock held)."""
        block = self._measures.get(measure)
        if block is None:
            block = self._measures[measure] = {
                "requests": 0,
                "cache_hits": 0,
                "cold_scores": 0,
                "warm_scores": 0,
                "errors": 0,
                "latency": {
                    "cold": _LatencyAccumulator(self._latency_window),
                    "warm": _LatencyAccumulator(self._latency_window),
                },
            }
        return block

    def record_hit(self, measure: str = DEFAULT_MEASURE) -> None:
        """Count one request served straight from the memo."""
        with self._lock:
            self.requests += 1
            self.cache_hits += 1
            block = self._measure_block(measure)
            block["requests"] += 1
            block["cache_hits"] += 1

    def record_score(
        self,
        source: str,
        elapsed: float,
        reused: int,
        queries: int,
        measure: str = DEFAULT_MEASURE,
    ) -> None:
        """Count one computed score and its latency/label accounting."""
        with self._lock:
            self.requests += 1
            block = self._measure_block(measure)
            block["requests"] += 1
            if source == "cold":
                self.cold_scores += 1
                block["cold_scores"] += 1
            else:
                self.warm_scores += 1
                block["warm_scores"] += 1
            self._latency[source].add(elapsed)
            block["latency"][source].add(elapsed)
            self.reused_labels += reused
            self.new_queries += queries

    def record_error(self, measure: str | None = DEFAULT_MEASURE) -> None:
        """Count one request that raised instead of scoring.

        ``measure=None`` counts only the global totals — the path for
        :class:`~repro.errors.UnknownMeasureError`, where creating a
        per-measure block keyed by an arbitrary client-supplied name
        would let callers grow the metrics dict without bound.
        """
        with self._lock:
            self.requests += 1
            self.errors += 1
            if measure is None:
                return
            block = self._measure_block(measure)
            block["requests"] += 1
            block["errors"] += 1

    def record_incremental(self, stats: dict[str, Any]) -> None:
        """Fold one incremental score's delta accounting into the totals."""
        with self._lock:
            self.incremental_scores += 1
            if stats.get("full_run"):
                self._incremental_totals["full_runs"] += 1
            for key in self._incremental_totals:
                if key == "full_runs":
                    continue
                self._incremental_totals[key] += int(stats.get(key, 0))

    def record_eviction(self) -> None:
        """Count one memoized record dropped by the LRU bound."""
        with self._lock:
            self.cache_evictions += 1

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served straight from cache."""
        with self._lock:
            if self.requests == 0:
                return 0.0
            return self.cache_hits / self.requests

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of every counter."""
        with self._lock:
            requests = self.requests
            return {
                "requests": requests,
                "cache_hits": self.cache_hits,
                "cache_hit_rate": (
                    self.cache_hits / requests if requests else 0.0
                ),
                "cold_scores": self.cold_scores,
                "warm_scores": self.warm_scores,
                "errors": self.errors,
                "reused_labels": self.reused_labels,
                "new_queries": self.new_queries,
                "cache_evictions": self.cache_evictions,
                "incremental": {
                    "scores": self.incremental_scores,
                    **dict(self._incremental_totals),
                },
                "latency_window": self._latency_window,
                "latency": {
                    "cold": self._latency["cold"].stats(),
                    "warm": self._latency["warm"].stats(),
                },
                "measures": {
                    name: {
                        "requests": block["requests"],
                        "cache_hits": block["cache_hits"],
                        "cold_scores": block["cold_scores"],
                        "warm_scores": block["warm_scores"],
                        "errors": block["errors"],
                        "latency": {
                            "cold": block["latency"]["cold"].stats(),
                            "warm": block["latency"]["warm"].stats(),
                        },
                    }
                    for name, block in sorted(self._measures.items())
                },
            }


@dataclass
class _PipelineState:
    """One measure's carry-over state, tagged with its graph version."""

    version: int
    payload: Any


class _CountedLock:
    """A lock plus the number of threads holding or waiting on it.

    The engine's lock table is LRU-pruned; the reference count is what
    makes pruning safe — an entry is only dropped when no thread can
    still serialize on it, so two threads can never score the same owner
    through different lock objects.
    """

    __slots__ = ("lock", "refs")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.refs = 0


class RiskEngine:
    """Versioned, memoizing scoring front of the learning pipeline.

    Parameters
    ----------
    store:
        The owner registry; its versions drive cache invalidation.
    pooling, classifier, config, seed, use_owner_confidence:
        Study parameters, with the same meaning (and defaults) as in
        :func:`repro.experiments.run_study`.  A cold engine score with a
        given ``seed`` equals the batch study's result for that owner.
    backend:
        Optional cold-score executor (anything with
        ``run_job(job) -> ScoreOutcome``, normally a
        :class:`~repro.service.workers.ProcessPoolBackend`).  ``None``
        (the default) computes cold scores inline on the calling thread.
    max_cached_owners:
        LRU bound on memoized records and the per-owner lock table.
        Generous by default; evictions are surfaced in
        :class:`EngineMetrics` as ``cache_evictions``.
    clock:
        Monotonic time source for latency accounting (injectable).
    """

    def __init__(
        self,
        store: OwnerStore,
        pooling: str = "npp",
        classifier: str = "harmonic",
        config: PipelineConfig | None = None,
        seed: int = 0,
        use_owner_confidence: bool = True,
        backend=None,
        max_cached_owners: int = 4096,
        clock=time.perf_counter,
        incremental_enabled: bool = True,
    ) -> None:
        if max_cached_owners < 1:
            raise ServiceError(
                f"max_cached_owners must be >= 1, got {max_cached_owners}"
            )
        self._store = store
        self._incremental_enabled = incremental_enabled
        self._pooling = pooling
        self._classifier = classifier
        self._config = config
        self._seed = seed
        self._use_owner_confidence = use_owner_confidence
        self._backend = backend
        self._max_cached_owners = max_cached_owners
        self._clock = clock
        self._metrics = EngineMetrics()
        # Memo keyed by (owner, measure): each measure caches, warms,
        # and invalidates independently, but all of an owner's entries
        # share the owner's version (one mutation stales them all).
        self._cache: OrderedDict[tuple[UserId, str], ScoreRecord] = (
            OrderedDict()
        )
        # Incremental pipeline states, keyed like the memo and bounded
        # by the same LRU limit.  A state is advisory: losing one only
        # costs the next warm score a full (state-rebuilding) run.
        self._states: OrderedDict[tuple[UserId, str], _PipelineState] = (
            OrderedDict()
        )
        self._cache_guard = threading.Lock()
        self._owner_locks: dict[UserId, _CountedLock] = {}
        self._locks_guard = threading.Lock()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def store(self) -> OwnerStore:
        """The backing owner store."""
        return self._store

    @property
    def metrics(self) -> EngineMetrics:
        """Serving counters."""
        return self._metrics

    @property
    def backend(self):
        """The cold-score backend (``None`` = inline serial scoring)."""
        return self._backend

    @property
    def max_cached_owners(self) -> int:
        """The LRU bound on memoized records."""
        return self._max_cached_owners

    @property
    def incremental_enabled(self) -> bool:
        """Whether warm re-scores use dirty-set delta replay."""
        return self._incremental_enabled

    def cached(
        self, owner_id: UserId, measure: str = DEFAULT_MEASURE
    ) -> ScoreRecord | None:
        """The memoized record for ``(owner_id, measure)``, fresh or stale."""
        with self._cache_guard:
            return self._cache.get((owner_id, measure))

    def owners_overview(self) -> list[dict[str, Any]]:
        """Store snapshot annotated with cache state (``/owners``).

        ``cached_version``/``cache_fresh`` describe the default measure
        (the historical columns); ``cached_measures`` lists every
        measure with a fresh memo for the owner.  The memo is folded
        into an owner→records map in one pass — re-scanning the whole
        cache per owner row made ``/owners`` quadratic on large fleets.
        """
        by_owner: dict[UserId, dict[str, ScoreRecord]] = {}
        with self._cache_guard:
            for (owner_id, measure), record in self._cache.items():
                by_owner.setdefault(owner_id, {})[measure] = record
        overview = []
        for row in self._store.snapshot():
            records = by_owner.get(row["owner"], {})
            cached = records.get(DEFAULT_MEASURE)
            row["cached_version"] = cached.version if cached else None
            row["cache_fresh"] = (
                cached is not None and cached.version == row["version"]
            )
            row["cached_measures"] = sorted(
                measure
                for measure, record in records.items()
                if record.version == row["version"]
            )
            overview.append(row)
        return overview

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def resolve_measure(self, measure: str | None = None) -> str:
        """The canonical measure name a request will be scored under.

        ``None`` resolves to the engine default.  This is the
        normalization the scheduler's request coalescing keys on: a
        ``/score?owner=7`` and a ``/score?owner=7&measure=stranger``
        must collapse into one engine call, so both must map to the
        same ``(owner, measure, version)`` key.  No registry lookup —
        unknown names pass through and fail inside :meth:`score`, where
        the error is delivered per-request.
        """
        return DEFAULT_MEASURE if measure is None else measure

    def score(
        self, owner_id: UserId, measure: str | None = None
    ) -> ScoreRecord:
        """Serve one owner's score, as cheaply as freshness allows.

        Cache hit → the memoized record.  Stale cache → warm re-score
        (the measure is handed its previous result; the default measure
        reuses prior owner labels via
        :func:`~repro.learning.incremental.continue_session`).  No cache
        → cold run through the measure — on the configured backend's
        worker pool when one is set and the measure is ``remote_safe``,
        inline otherwise.

        Raises
        ------
        UnknownOwnerError
            If ``owner_id`` is not registered with the store.
        UnknownMeasureError
            If ``measure`` names no registered risk measure.
        """
        name = DEFAULT_MEASURE if measure is None else measure
        try:
            risk_measure = get_measure(name)
        except UnknownMeasureError:
            # Global-only accounting: a per-measure block keyed by an
            # arbitrary unknown name would be unbounded.
            self._metrics.record_error(None)
            raise
        with self._owner_lock(owner_id):
            # The entry must be fetched *inside* the owner lock: a
            # concurrent attach_entry (migration) or universe-widening
            # add_friendship swaps/extends the entry, and a pre-lock
            # fetch could compute a stale owner/universe against a
            # freshly bumped version.
            try:
                entry = self._store.get(owner_id)
            except UnknownOwnerError:
                self._metrics.record_error(name)
                raise
            version = entry.version
            cached = self._touch_cache(owner_id, name, version)
            if cached is not None:
                self._metrics.record_hit(name)
                # provenance of *this response*: served from memo, free
                return dataclasses.replace(
                    cached, source="cache", elapsed_seconds=0.0
                )
            stale = self.cached(owner_id, name)
            try:
                record = self._compute(entry, version, stale, risk_measure)
            except Exception:
                self._metrics.record_error(name)
                raise
            self._memoize(owner_id, name, record)
            # persist the oracle's label grants through the store: on a
            # WAL-backed store they survive a crash, which matters because
            # labels are the loop's scarcest resource (3 per round)
            granted = risk_measure.granted_labels(record.result)
            if granted:
                self._store.grant_labels(owner_id, granted)
            self._metrics.record_score(
                record.source,
                record.elapsed_seconds,
                record.reused_labels,
                record.new_queries,
                name,
            )
            return record

    def invalidate(self, owner_id: UserId) -> None:
        """Drop the owner's memoized records (the next scores run cold).

        Pipeline states go with them: ``invalidate`` promises a *cold*
        re-score, and a surviving state would silently serve a delta
        replay instead.
        """
        with self._owner_lock(owner_id):
            with self._cache_guard:
                for key in [
                    key for key in self._cache if key[0] == owner_id
                ]:
                    del self._cache[key]
                for key in [
                    key for key in self._states if key[0] == owner_id
                ]:
                    del self._states[key]

    def invalidate_many(self, owner_ids: Iterable[UserId]) -> None:
        """Drop memoized records for several owners at once.

        Live rebalancing calls this when owners migrate off this shard:
        stale records for detached owners are unreachable (the router no
        longer routes them here) but would pin their graphs in memory.
        """
        for owner_id in owner_ids:
            self.invalidate(owner_id)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _compute(
        self, entry, version: int, cached: ScoreRecord | None, risk_measure
    ) -> ScoreRecord:
        if (
            cached is None
            and self._backend is not None
            and risk_measure.remote_safe
        ):
            # Pure cold scores still ship to the worker pool; pipeline
            # state is built lazily by the first inline re-score.
            return self._compute_cold_on_backend(entry, version, risk_measure)
        owner_id = entry.owner.user_id
        request = MeasureRequest(
            graph=self._store.graph,
            owner=entry.owner,
            index=entry.index,
            pooling=self._pooling,
            classifier=self._classifier,
            config=self._config,
            seed=self._seed,
            use_owner_confidence=self._use_owner_confidence,
        )
        start = self._clock()
        if self._incremental_enabled and risk_measure.supports_incremental:
            score = self._compute_incremental(
                owner_id, request, version, cached, risk_measure
            )
        else:
            previous = cached.result if cached is not None else None
            score = risk_measure.compute(request, previous)
        elapsed = self._clock() - start
        source: ScoreSource = "warm" if cached is not None else "cold"
        return ScoreRecord(
            owner_id=entry.owner.user_id,
            version=version,
            source=source,
            result=score.result,
            digest=score.digest,
            reused_labels=score.reused_labels,
            new_queries=score.new_queries,
            elapsed_seconds=elapsed,
            measure=risk_measure.name,
        )

    def _compute_incremental(
        self,
        owner_id: UserId,
        request: MeasureRequest,
        version: int,
        cached: ScoreRecord | None,
        risk_measure,
    ):
        """Delta-replay one score through the measure's pipeline state.

        The dirty delta handed to the measure merges every store
        mutation between the state's version and ``version`` (the
        version read under the owner lock at the top of :meth:`score`).
        A ``None`` delta — no state, or the dirty log no longer covers
        the gap — makes the measure run fully and rebuild state, so a
        lost state or evicted log costs time, never correctness.
        """
        with self._cache_guard:
            state = self._states.get((owner_id, risk_measure.name))
            if state is not None:
                self._states.move_to_end((owner_id, risk_measure.name))
        dirty: DirtyDelta | None = None
        payload = None
        if state is not None and cached is not None:
            payload = state.payload
            if state.version == version:
                dirty = EMPTY_DELTA
            else:
                dirty = self._store.dirty_between(owner_id, state.version)
            if dirty is None:
                # Gap not covered by the dirty log (evicted entries or a
                # replaced graph): full rebuild, not a wrong reuse.
                payload = None
        incremental = risk_measure.compute_incremental(
            request, payload, dirty
        )
        if incremental.state is not None:
            with self._cache_guard:
                key = (owner_id, risk_measure.name)
                self._states[key] = _PipelineState(
                    version=version, payload=incremental.state
                )
                self._states.move_to_end(key)
                while len(self._states) > self._max_cached_owners:
                    self._states.popitem(last=False)
        if incremental.stats is not None:
            self._metrics.record_incremental(dict(incremental.stats))
        return incremental.score

    def _compute_cold_on_backend(
        self, entry, version: int, risk_measure
    ) -> ScoreRecord:
        """Ship one cold score to the worker pool as a picklable job."""
        from .workers import ScoreJob

        owner_id = entry.owner.user_id
        start = self._clock()
        job = ScoreJob.from_universe(
            entry.owner,
            entry.index,
            self._store.graph,
            self._store.universe(owner_id),
            version=version,
            pooling=self._pooling,
            classifier=self._classifier,
            config=self._config,
            seed=self._seed,
            use_owner_confidence=self._use_owner_confidence,
            measure=risk_measure.name,
        )
        outcome = self._backend.run_job(job)
        elapsed = self._clock() - start
        return ScoreRecord(
            owner_id=owner_id,
            version=version,
            source="cold",
            result=outcome.result,
            digest=outcome.digest,
            reused_labels=0,
            new_queries=outcome.new_queries,
            elapsed_seconds=elapsed,
            measure=risk_measure.name,
        )

    def _touch_cache(
        self, owner_id: UserId, measure: str, version: int
    ) -> ScoreRecord | None:
        """The fresh memoized record, LRU-touched — or ``None``."""
        with self._cache_guard:
            cached = self._cache.get((owner_id, measure))
            if cached is None or cached.version != version:
                return None
            self._cache.move_to_end((owner_id, measure))
            return cached

    def _memoize(
        self, owner_id: UserId, measure: str, record: ScoreRecord
    ) -> None:
        """Store a record, evicting least-recently-served overflow."""
        evicted = 0
        with self._cache_guard:
            self._cache[(owner_id, measure)] = record
            self._cache.move_to_end((owner_id, measure))
            while len(self._cache) > self._max_cached_owners:
                self._cache.popitem(last=False)
                evicted += 1
        for _ in range(evicted):
            self._metrics.record_eviction()

    @contextmanager
    def _owner_lock(self, owner_id: UserId) -> Iterator[None]:
        """Serialize work per owner via a reference-counted lock table.

        Entries whose reference count hits zero are pruned once the table
        exceeds the LRU bound — a held (or waited-on) lock is never
        dropped, so same-owner serialization survives eviction pressure.
        """
        with self._locks_guard:
            entry = self._owner_locks.get(owner_id)
            if entry is None:
                entry = self._owner_locks[owner_id] = _CountedLock()
            entry.refs += 1
        try:
            with entry.lock:
                yield
        finally:
            with self._locks_guard:
                entry.refs -= 1
                if (
                    entry.refs == 0
                    and len(self._owner_locks) > self._max_cached_owners
                ):
                    for candidate in list(self._owner_locks):
                        if len(self._owner_locks) <= self._max_cached_owners:
                            break
                        if self._owner_locks[candidate].refs == 0:
                            del self._owner_locks[candidate]


__all__ = ["EngineMetrics", "RiskEngine", "ScoreRecord", "ScoreSource"]
