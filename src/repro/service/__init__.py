"""The risk-scoring service: versioned store, cached engine, HTTP front.

The paper motivates on-the-fly risk labels on *dynamic* graphs
(Section III); this package is the layer that serves them continuously
instead of re-running the batch study per request:

* :class:`OwnerStore` — registry of owners with versioned graph/profile
  state; every delta bumps exactly the affected owners' versions;
* :class:`RiskEngine` — memoizes scores per ``(owner, graph_version)``,
  re-scores stale owners *warm* through
  :func:`repro.learning.incremental.continue_session` (prior owner labels
  reused), and reproduces :func:`repro.experiments.run_study` byte for
  byte on cold scores;
* :class:`ScoreScheduler` — bounded worker pool with per-owner
  serialization and backpressure;
* :class:`RiskServiceServer` — stdlib ``ThreadingHTTPServer`` JSON API
  (``/score``, ``/owners``, ``/healthz``, ``/metrics``) wired through the
  resilience layer; started from the CLI via ``repro-study serve``.
"""

from .engine import EngineMetrics, RiskEngine, ScoreRecord
from .http import RiskServiceHandler, RiskServiceServer, build_server
from .scheduler import ScoreScheduler
from .store import OwnerEntry, OwnerStore

__all__ = [
    "EngineMetrics",
    "OwnerEntry",
    "OwnerStore",
    "RiskEngine",
    "RiskServiceHandler",
    "RiskServiceServer",
    "ScoreRecord",
    "ScoreScheduler",
    "build_server",
]
