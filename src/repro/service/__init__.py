"""The risk-scoring service: versioned store, cached engine, HTTP front.

The paper motivates on-the-fly risk labels on *dynamic* graphs
(Section III); this package is the layer that serves them continuously
instead of re-running the batch study per request:

* :class:`OwnerStore` — registry of owners with versioned graph/profile
  state; every delta bumps exactly the affected owners' versions;
* :class:`RiskEngine` — dispatches through the pluggable risk-measure
  registry (:mod:`repro.measures`; ``/score?measure=``), memoizes scores
  per ``(owner, measure, graph_version)``, re-scores stale owners *warm*
  (the default measure reuses prior owner labels through
  :func:`repro.learning.incremental.continue_session`), and reproduces
  :func:`repro.experiments.run_study` byte for byte on cold scores;
* :class:`ScoreScheduler` — bounded worker pool with per-owner
  serialization and backpressure;
* :class:`RefreshScheduler` — background refresh: store mutations
  enqueue the invalidated owners, and idle scheduler slots rescore them
  ahead of demand (``repro-study serve --background-refresh``), with
  delta accounting surfaced under ``/metrics``;
* :class:`ProcessPoolBackend` — multi-core cold scoring: picklable
  :class:`ScoreJob`\\ s run in worker processes, results are rehydrated
  and digest-checked, crashed workers are retried on a fresh pool
  (``repro-study serve --score-workers N`` / ``run-study --workers N``);
* :class:`RiskServiceServer` — stdlib ``ThreadingHTTPServer`` JSON API
  (``/score``, ``/mutate``, ``/owners``, ``/healthz``, ``/readyz``,
  ``/metrics``) wired through the resilience layer; started from the CLI
  via ``repro-study serve``;
* :class:`AsyncRiskServer` — the asyncio twin of the threaded server
  (``repro-study serve --async``), byte-identical on every route, with
  bounded admission (queue full → 429 + ``Retry-After``), request
  coalescing (concurrent same-``(owner, measure, version)`` ``/score``
  hits share one engine call), and group-committed WAL appends (one
  fsync per batch of concurrent mutations, acked only after the batch
  is durable);
* :class:`DurableOwnerStore` / :class:`WriteAheadLog` — crash safety:
  every mutation is logged write-ahead (checksummed, fsync'd) and
  periodically compacted into an atomic snapshot, so a ``kill -9`` loses
  no acknowledged mutation (``repro-study serve --wal-dir``);
* :class:`ShardMap` / :class:`ShardSupervisor` /
  :class:`ShardRouterServer` — horizontal fault isolation: the owner
  space is consistent-hashed across N shard worker processes (each with
  its own WAL, engine, and scheduler), a supervisor health-checks and
  restarts crashed shards, and a failover-aware router proxies
  ``/score``, ``/mutate``, and ``/score-batch`` to the owning shard
  (``repro-study serve --shards N``);
* :class:`RebalanceCoordinator` — live elasticity: ``POST /shards``
  resizes the fleet at runtime via a crash-journaled WAL-slice
  migration (export → replay → digest-verify → cutover), with bounded
  ``503 + Retry-After`` only for the owners in flight and deterministic
  roll-forward/rollback after a crash at any phase.
"""

from .async_http import AdmissionQueue, AsyncRiskServer, build_async_server
from .dirty import DirtyDelta, DirtyLog
from .engine import EngineMetrics, RiskEngine, ScoreRecord
from .http import (
    RiskServiceHandler,
    RiskServiceServer,
    ServiceState,
    build_server,
)
from .rebalance import (
    PHASES,
    RebalanceCoordinator,
    effective_topology,
    phase_reached,
)
from .router import (
    ShardClient,
    ShardRouterHandler,
    ShardRouterServer,
    build_router,
)
from .refresh import RefreshScheduler
from .scheduler import ScoreScheduler
from .sharding import DEFAULT_REPLICAS, ShardMap, moved_owners
from .store import OwnerEntry, OwnerStore
from .supervisor import ShardSpec, ShardSupervisor, build_worker_argv
from .wal import (
    DurableOwnerStore,
    RecoveryReport,
    WriteAheadLog,
    detach_slice,
    export_slice,
    import_slice,
    mutate_store,
    read_wal,
    slice_digest,
    state_digest,
)
from .workers import (
    WORKER_CRASH_EXIT_CODE,
    ProcessPoolBackend,
    ScoreJob,
    ScoreOutcome,
    StudyOutcome,
    execute_owner_run_job,
    execute_score_job,
)

__all__ = [
    "AdmissionQueue",
    "AsyncRiskServer",
    "DEFAULT_REPLICAS",
    "DirtyDelta",
    "DirtyLog",
    "DurableOwnerStore",
    "EngineMetrics",
    "OwnerEntry",
    "OwnerStore",
    "PHASES",
    "ProcessPoolBackend",
    "RebalanceCoordinator",
    "RecoveryReport",
    "RefreshScheduler",
    "RiskEngine",
    "RiskServiceHandler",
    "RiskServiceServer",
    "ScoreJob",
    "ScoreOutcome",
    "ScoreRecord",
    "ScoreScheduler",
    "ServiceState",
    "ShardClient",
    "ShardMap",
    "ShardRouterHandler",
    "ShardRouterServer",
    "ShardSpec",
    "ShardSupervisor",
    "StudyOutcome",
    "WORKER_CRASH_EXIT_CODE",
    "WriteAheadLog",
    "build_async_server",
    "build_router",
    "build_server",
    "build_worker_argv",
    "detach_slice",
    "effective_topology",
    "execute_owner_run_job",
    "execute_score_job",
    "export_slice",
    "import_slice",
    "moved_owners",
    "mutate_store",
    "phase_reached",
    "read_wal",
    "slice_digest",
    "state_digest",
]
