"""The risk-scoring service: versioned store, cached engine, HTTP front.

The paper motivates on-the-fly risk labels on *dynamic* graphs
(Section III); this package is the layer that serves them continuously
instead of re-running the batch study per request:

* :class:`OwnerStore` — registry of owners with versioned graph/profile
  state; every delta bumps exactly the affected owners' versions;
* :class:`RiskEngine` — memoizes scores per ``(owner, graph_version)``,
  re-scores stale owners *warm* through
  :func:`repro.learning.incremental.continue_session` (prior owner labels
  reused), and reproduces :func:`repro.experiments.run_study` byte for
  byte on cold scores;
* :class:`ScoreScheduler` — bounded worker pool with per-owner
  serialization and backpressure;
* :class:`RiskServiceServer` — stdlib ``ThreadingHTTPServer`` JSON API
  (``/score``, ``/mutate``, ``/owners``, ``/healthz``, ``/readyz``,
  ``/metrics``) wired through the resilience layer; started from the CLI
  via ``repro-study serve``;
* :class:`DurableOwnerStore` / :class:`WriteAheadLog` — crash safety:
  every mutation is logged write-ahead (checksummed, fsync'd) and
  periodically compacted into an atomic snapshot, so a ``kill -9`` loses
  no acknowledged mutation (``repro-study serve --wal-dir``).
"""

from .engine import EngineMetrics, RiskEngine, ScoreRecord
from .http import (
    RiskServiceHandler,
    RiskServiceServer,
    ServiceState,
    build_server,
)
from .scheduler import ScoreScheduler
from .store import OwnerEntry, OwnerStore
from .wal import (
    DurableOwnerStore,
    RecoveryReport,
    WriteAheadLog,
    mutate_store,
    read_wal,
)

__all__ = [
    "DurableOwnerStore",
    "EngineMetrics",
    "OwnerEntry",
    "OwnerStore",
    "RecoveryReport",
    "RiskEngine",
    "RiskServiceHandler",
    "RiskServiceServer",
    "ScoreRecord",
    "ScoreScheduler",
    "ServiceState",
    "WriteAheadLog",
    "build_server",
    "mutate_store",
    "read_wal",
]
