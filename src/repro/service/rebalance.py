"""Live shard rebalancing: crash-journaled WAL-slice migration.

PR 6 froze the shard count at boot; this module makes the fleet
elastically resizable while it serves.  ``POST /shards {"count": M}``
on the router starts a :class:`RebalanceCoordinator`, which walks a
migration state machine over exactly the owners the consistent-hash
delta moves (≈ ``1/N`` of the space — see
:func:`~repro.service.sharding.moved_owners`):

``plan → spawn → snapshot-slice → transfer → verify-digest → cutover →
truncate-source → retire → done``

* **plan** — ask every live shard for its owners, compute each one's
  destination under the resized ring, group the movers by
  ``(source, destination)`` edge;
* **spawn** — (grow) boot the joining workers with ``--join-empty``:
  same cohort graph, zero registered owners, fresh WAL dir;
* **snapshot-slice** — the source exports each moved owner's full entry
  (owner + ground truth, global cohort index, version, universe,
  labels) plus its graph, with digests (``POST /slice/export``);
* **transfer** — the destination replays the slice into its own durable
  store (``POST /slice/import``): logged ``attach_owner``/
  ``adopt_graph`` records make the handoff crash-safe on the
  destination before anything is acknowledged;
* **verify-digest** — the destination re-serializes what it replayed
  and must reproduce the source's digest byte-for-byte;
* **cutover** — after re-checking the source didn't drift since export
  (an in-flight request may have raced the fence), journal the intent,
  persist the new topology, and atomically swap the router's
  map + clients; the fence lifts here;
* **truncate-source** — the source durably detaches the moved owners;
* **retire** — (shrink) drain the removed tail workers and delete
  their WAL dirs.

Every phase completion is journaled in a **rebalance manifest**
(:class:`~repro.io.checkpoint.CheckpointStore`, atomic write) next to a
persisted **topology** document, so a router killed at *any* phase
recovers deterministically at boot: a manifest short of ``cutover``
rolls back (destinations detach, joining WAL dirs are deleted, old
count serves); one at or past ``cutover`` rolls forward (new count
serves, truncate/retire re-run — both are idempotent).

Degraded-mode contract while migrating: owners that are not moving see
**zero** errors; moving owners (and graph-wide broadcasts, which would
stale the in-flight graph copy) get a bounded ``503 + Retry-After``
between export and cutover; ``GET /shards`` reports the live phase.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Callable

from ..errors import RebalanceError
from ..io.checkpoint import CheckpointStore
from .sharding import ShardMap
from .supervisor import ShardSpec

#: The migration state machine, in execution order.  The manifest's
#: ``phase`` field is always the *last completed* entry — except
#: ``cutover``, which is journaled before it is applied so recovery
#: rolls forward once the intent is durable.
PHASES = (
    "plan",
    "spawn",
    "snapshot-slice",
    "transfer",
    "verify-digest",
    "cutover",
    "truncate-source",
    "retire",
    "done",
)

#: Checkpoint keys under the deployment's ``--wal-dir``.
MANIFEST_KEY = "rebalance-manifest"
TOPOLOGY_KEY = "topology"

#: Chaos hook: when set to a phase name, the coordinator calls
#: ``os._exit(REBALANCE_EXIT_CODE)`` immediately after journaling that
#: phase — a deterministic router ``kill -9`` for the recovery matrix.
EXIT_AFTER_ENV = "REPRO_REBALANCE_EXIT_AFTER_PHASE"
REBALANCE_EXIT_CODE = 25


def phase_reached(phase: str | None, target: str) -> bool:
    """Whether the journaled ``phase`` is at or past ``target``."""
    if phase is None:
        return False
    return PHASES.index(phase) >= PHASES.index(target)


def effective_topology(
    wal_root: str | Path | None, default_count: int
) -> tuple[int, dict[str, Any] | None]:
    """The shard count a restarting deployment must boot with.

    Reads the persisted topology document (a completed resize survives
    restarts) and the rebalance manifest: an interrupted migration
    overrides the topology — ``new_count`` at or past cutover (roll
    forward), ``old_count`` before it (roll back).  Returns the count
    and the active manifest (``None`` when there is nothing to finish).
    """
    if wal_root is None:
        return default_count, None
    checkpoints = CheckpointStore(wal_root)
    topology = checkpoints.load(TOPOLOGY_KEY)
    count = int(topology["count"]) if topology else default_count
    manifest = checkpoints.load(MANIFEST_KEY)
    if manifest is not None and manifest.get("status") == "active":
        if phase_reached(manifest.get("phase"), "cutover"):
            count = int(manifest["new_count"])
        else:
            count = int(manifest["old_count"])
        return count, manifest
    return count, None


class _AbortRequested(Exception):
    """Internal: the operator asked for a pre-cutover rollback."""


class RebalanceCoordinator:
    """Drives one live resize of the shard fleet, journaled throughout.

    Parameters
    ----------
    router:
        The :class:`~repro.service.router.ShardRouterServer` — supplies
        the supervisor, the current topology, the fence, and the atomic
        topology swap.
    make_spec:
        ``(shard_index, shard_count) -> ShardSpec`` for a joining
        worker.  Must boot the worker *empty* (same cohort graph, zero
        registered owners) — ``repro serve --join-empty`` does.
    wal_root:
        The deployment's ``--wal-dir``: manifest + topology documents
        live here, and per-shard ``shard-<i>`` WAL dirs are deleted on
        retire/rollback.  ``None`` = in-memory manifest only (no crash
        recovery — fine for tests, documented for ops).
    shard_patience:
        Seconds a phase keeps retrying an unreachable shard before the
        migration fails — rides out the supervisor's restart window, so
        a ``kill -9`` of either endpoint mid-phase self-heals.
    drift_retries:
        How many times the export→verify loop re-runs when the source
        drifted between export and cutover (an in-flight request that
        raced the fence).  The fence blocks new work, so this converges
        after at most one extra pass in practice.
    """

    def __init__(
        self,
        router,
        make_spec: Callable[[int, int], ShardSpec],
        *,
        wal_root: str | Path | None = None,
        log: Callable[[str], None] | None = None,
        http_timeout: float = 15.0,
        shard_patience: float = 60.0,
        drift_retries: int = 3,
        retire_drain_timeout: float = 15.0,
    ) -> None:
        self._router = router
        self._supervisor = router.supervisor
        self._make_spec = make_spec
        self._wal_root = Path(wal_root) if wal_root is not None else None
        self._checkpoints = (
            CheckpointStore(self._wal_root)
            if self._wal_root is not None
            else None
        )
        self._log = log or (lambda message: None)
        self._http_timeout = http_timeout
        self._shard_patience = shard_patience
        self._drift_retries = max(1, drift_retries)
        self._retire_drain_timeout = retire_drain_timeout
        self._lock = threading.RLock()
        self._thread: threading.Thread | None = None
        self._resume = threading.Event()
        self._abort = threading.Event()
        self._pause_before: str | None = None
        self._paused_at: str | None = None
        self._slices: dict[tuple[int, int], dict[str, Any]] = {}
        self._manifest: dict[str, Any] | None = None
        if self._checkpoints is not None:
            self._manifest = self._checkpoints.load(MANIFEST_KEY)

    # ------------------------------------------------------------------
    # operator surface (POST /shards)
    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        """JSON-ready migration status for ``GET /shards``."""
        with self._lock:
            manifest = self._manifest
            if manifest is None:
                return {"status": "idle", "active": False}
            active = manifest.get("status") == "active"
            return {
                "status": (
                    "paused"
                    if active and self._paused_at is not None
                    else manifest.get("status")
                ),
                "active": active,
                "phase": manifest.get("phase"),
                "paused_at": self._paused_at,
                "old_count": manifest.get("old_count"),
                "new_count": manifest.get("new_count"),
                "moves": [
                    {
                        "source": move["source"],
                        "destination": move["destination"],
                        "owners": len(move["owners"]),
                    }
                    for move in manifest.get("moves", [])
                ],
                "error": manifest.get("error"),
            }

    def begin(
        self, new_count: int, pause_before: str | None = None
    ) -> None:
        """Start a live resize to ``new_count`` shards (background).

        ``pause_before`` holds the state machine just before the named
        phase until :meth:`resume` — the inspection hook operators (and
        the chaos harness) use to act at an exact phase boundary.
        """
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                raise RebalanceError(
                    "a rebalance is already in progress",
                    phase=(self._manifest or {}).get("phase"),
                )
            if (
                self._manifest is not None
                and self._manifest.get("status") == "active"
            ):
                raise RebalanceError(
                    "an unfinished rebalance manifest exists; restart the "
                    "router to recover it before resizing again",
                    phase=self._manifest.get("phase"),
                )
            if not isinstance(new_count, int) or new_count < 1:
                raise RebalanceError(
                    f"shard count must be an integer >= 1, got {new_count!r}"
                )
            if pause_before is not None and pause_before not in PHASES:
                raise RebalanceError(
                    f"unknown phase {pause_before!r}; phases: {PHASES}"
                )
            current = self._router.shard_map.num_shards
            if new_count == current:
                raise RebalanceError(
                    f"fleet is already at {new_count} shards"
                )
            self._manifest = {
                "status": "active",
                "phase": None,
                "old_count": current,
                "new_count": new_count,
                "moves": [],
                "error": None,
            }
            self._pause_before = pause_before
            self._paused_at = None
            self._resume = threading.Event()
            self._abort = threading.Event()
            self._slices = {}
            self._journal()
            self._thread = threading.Thread(
                target=self._run, name="rebalance", daemon=True
            )
            self._thread.start()
        self._log(
            f"rebalance started: {current} -> {new_count} shards"
            + (f" (pausing before {pause_before})" if pause_before else "")
        )

    def resume(self) -> None:
        """Release a migration paused by ``pause_before``."""
        with self._lock:
            if self._manifest is None or self._manifest.get("status") != "active":
                raise RebalanceError("no active rebalance to resume")
            self._resume.set()

    def abort(self) -> None:
        """Request a rollback; only honored before cutover."""
        with self._lock:
            if self._manifest is None or self._manifest.get("status") != "active":
                raise RebalanceError("no active rebalance to abort")
            if phase_reached(self._manifest.get("phase"), "cutover"):
                raise RebalanceError(
                    "cutover already journaled; the migration can only "
                    "roll forward",
                    phase=self._manifest.get("phase"),
                )
            self._abort.set()
            self._resume.set()  # wake a paused state machine

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the background run finishes (tests/ops tooling)."""
        thread = self._thread
        if thread is None:
            return True
        thread.join(timeout=timeout)
        return not thread.is_alive()

    # ------------------------------------------------------------------
    # boot-time recovery (router restarted mid-migration)
    # ------------------------------------------------------------------
    def finish_boot_recovery(self) -> str | None:
        """Complete or undo an interrupted migration found on disk.

        Call after the supervisor and router are up, *before* marking
        the deployment ready.  The caller must already have booted at
        :func:`effective_topology`'s count.  Returns ``"rolled-forward"``,
        ``"rolled-back"``, or ``None`` when there was nothing to do.
        """
        manifest = self._manifest
        if manifest is None or manifest.get("status") != "active":
            self._persist_topology(self._router.shard_map.num_shards)
            return None
        old_count = int(manifest["old_count"])
        new_count = int(manifest["new_count"])
        if phase_reached(manifest.get("phase"), "cutover"):
            self._log(
                "recovering interrupted rebalance past cutover: "
                f"rolling forward to {new_count} shards"
            )
            self._persist_topology(new_count)
            if not phase_reached(manifest["phase"], "truncate-source"):
                self._phase_truncate()
                self._set_phase("truncate-source")
            if not phase_reached(manifest["phase"], "retire"):
                self._phase_retire()
                self._set_phase("retire")
            self._finish_done()
            return "rolled-forward"
        self._log(
            "recovering interrupted rebalance before cutover: "
            f"rolling back to {old_count} shards"
        )
        if new_count > old_count:
            # joining workers were never part of the booted (old-count)
            # fleet; their WAL dirs may hold partial imports — delete
            # them so a future grow starts clean
            for index in range(old_count, new_count):
                self._remove_shard_dir(index)
        else:
            for move in manifest.get("moves", []):
                destination = int(move["destination"])
                if destination >= self._supervisor.num_shards:
                    continue
                try:
                    self._shard_call(
                        destination,
                        "POST",
                        "/slice/detach",
                        {"owners": move["owners"]},
                        patience=self._shard_patience,
                    )
                except RebalanceError as error:
                    self._log(
                        f"rollback detach on shard {destination} failed: "
                        f"{error} (owners still safe on the source)"
                    )
        manifest["status"] = "aborted"
        manifest["error"] = "interrupted before cutover; rolled back"
        self._journal()
        self._persist_topology(old_count)
        return "rolled-back"

    # ------------------------------------------------------------------
    # the state machine
    # ------------------------------------------------------------------
    def _run(self) -> None:
        manifest = self._manifest
        assert manifest is not None
        try:
            self._gate("plan")
            self._phase_plan()
            self._set_phase("plan")
            self._gate("spawn")
            self._phase_spawn()
            self._set_phase("spawn")
            moving = sorted(
                {
                    owner
                    for move in manifest["moves"]
                    for owner in move["owners"]
                }
            )
            self._router.set_fence(moving, "migrating")
            for attempt in range(self._drift_retries):
                self._gate("snapshot-slice")
                self._phase_snapshot()
                self._set_phase("snapshot-slice")
                self._gate("transfer")
                self._phase_transfer()
                self._set_phase("transfer")
                self._gate("verify-digest")
                self._phase_verify()
                self._set_phase("verify-digest")
                self._gate("cutover")
                if self._sources_stable():
                    break
                self._log(
                    "a source drifted between export and cutover "
                    f"(in-flight request raced the fence); re-exporting "
                    f"(attempt {attempt + 2}/{self._drift_retries})"
                )
            else:
                raise RebalanceError(
                    "sources kept drifting after "
                    f"{self._drift_retries} export passes",
                    phase="cutover",
                )
            # -- point of no return: journal the intent, then apply it.
            # A crash after this journal rolls FORWARD at recovery.
            self._set_phase("cutover")
            self._persist_topology(manifest["new_count"])
            self._router.apply_topology(self._new_map())
            self._router.clear_fence()
            self._log(
                f"cutover complete: routing at {manifest['new_count']} shards"
            )
            self._pause_gate("truncate-source")
            self._phase_truncate()
            self._set_phase("truncate-source")
            self._pause_gate("retire")
            self._phase_retire()
            self._set_phase("retire")
            self._finish_done()
            self._log("rebalance done")
        except _AbortRequested:
            self._rollback("aborted by operator request")
        except RebalanceError as error:
            self._rollback(str(error))
        except Exception as error:  # noqa: BLE001 - journal, never crash the router
            self._rollback(f"unexpected failure: {error!r}")
        finally:
            self._router.clear_fence()
            self._paused_at = None

    def _phase_plan(self) -> None:
        manifest = self._manifest
        new_map = self._new_map()
        groups: dict[tuple[int, int], list[int]] = {}
        for shard in range(int(manifest["old_count"])):
            document = self._shard_call(shard, "GET", "/owners")
            for row in document.get("owners", []):
                owner = int(row["owner"])
                destination = new_map.shard_of(owner)
                if destination != shard:
                    groups.setdefault((shard, destination), []).append(owner)
        manifest["moves"] = [
            {
                "source": source,
                "destination": destination,
                "owners": sorted(owners),
                "owners_digest": None,
                "imported_digest": None,
            }
            for (source, destination), owners in sorted(groups.items())
        ]
        total = sum(len(move["owners"]) for move in manifest["moves"])
        self._log(
            f"plan: {total} owner(s) move across "
            f"{len(manifest['moves'])} edge(s)"
        )

    def _phase_spawn(self) -> None:
        manifest = self._manifest
        old_count = int(manifest["old_count"])
        new_count = int(manifest["new_count"])
        for index in range(old_count, new_count):
            spec = self._make_spec(index, new_count)
            self._supervisor.add_worker(spec)
            if not self._supervisor.wait_for_ready(
                index, timeout=self._shard_patience
            ):
                raise RebalanceError(
                    f"joining shard {index} never became ready",
                    phase="spawn",
                )
            self._log(f"shard {index} spawned empty and ready")

    def _phase_snapshot(self) -> None:
        for move in self._manifest["moves"]:
            document = self._shard_call(
                int(move["source"]),
                "POST",
                "/slice/export",
                {"owners": move["owners"]},
            )
            self._slices[
                (int(move["source"]), int(move["destination"]))
            ] = document
            move["owners_digest"] = document["owners_digest"]

    def _phase_transfer(self) -> None:
        old_count = int(self._manifest["old_count"])
        for move in self._manifest["moves"]:
            key = (int(move["source"]), int(move["destination"]))
            document = self._slices.get(key)
            if document is None:
                raise RebalanceError(
                    f"no exported slice for edge {key}", phase="transfer"
                )
            result = self._shard_call(
                int(move["destination"]),
                "POST",
                "/slice/import",
                {
                    "slice": document,
                    # a joining shard booted empty from the seed cohort
                    # and missed every broadcast since: it adopts the
                    # source's graph; an existing shard must already
                    # match it byte-for-byte (import verifies)
                    "adopt_graph": int(move["destination"]) >= old_count,
                },
            )
            move["imported_digest"] = result.get("owners_digest")

    def _phase_verify(self) -> None:
        for move in self._manifest["moves"]:
            digest = self._shard_call(
                int(move["destination"]),
                "POST",
                "/slice/digest",
                {"owners": move["owners"]},
            )
            if digest.get("present") != sorted(move["owners"]) or (
                digest.get("owners_digest") != move["owners_digest"]
            ):
                raise RebalanceError(
                    f"destination shard {move['destination']} failed the "
                    "digest check after replay — migrated state is not "
                    "byte-identical to the source",
                    phase="verify-digest",
                )

    def _sources_stable(self) -> bool:
        for move in self._manifest["moves"]:
            digest = self._shard_call(
                int(move["source"]),
                "POST",
                "/slice/digest",
                {"owners": move["owners"]},
            )
            if digest.get("owners_digest") != move["owners_digest"]:
                return False
        return True

    def _phase_truncate(self) -> None:
        by_source: dict[int, list[int]] = {}
        for move in self._manifest["moves"]:
            by_source.setdefault(int(move["source"]), []).extend(
                move["owners"]
            )
        for source, owners in sorted(by_source.items()):
            if source >= self._supervisor.num_shards:
                # boot-recovery roll-forward of a shrink: the removed
                # source was never respawned; its WAL dir is deleted at
                # retire, which truncates it rather more thoroughly
                continue
            self._shard_call(
                source, "POST", "/slice/detach", {"owners": sorted(owners)}
            )

    def _phase_retire(self) -> None:
        manifest = self._manifest
        old_count = int(manifest["old_count"])
        new_count = int(manifest["new_count"])
        for index in range(old_count - 1, new_count - 1, -1):
            if index < self._supervisor.num_shards:
                self._supervisor.retire_worker(
                    index, drain_timeout=self._retire_drain_timeout
                )
            self._remove_shard_dir(index)
            self._log(f"shard {index} retired; WAL dir removed")

    def _finish_done(self) -> None:
        manifest = self._manifest
        manifest["status"] = "done"
        manifest["phase"] = "done"
        manifest["error"] = None
        self._journal()
        self._slices = {}

    def _rollback(self, error: str) -> None:
        self._router.clear_fence()
        manifest = self._manifest
        if manifest is None:
            return
        old_count = int(manifest["old_count"])
        new_count = int(manifest["new_count"])
        self._log(f"rolling back rebalance: {error}")
        try:
            if new_count > old_count:
                # grow: every destination is a joining shard — drop the
                # workers (tail-first) and their WAL dirs; the sources
                # never detached anything, so they stay authoritative
                top = min(new_count, self._supervisor.num_shards)
                for index in range(top - 1, old_count - 1, -1):
                    try:
                        self._supervisor.retire_worker(
                            index, drain_timeout=self._retire_drain_timeout
                        )
                    except Exception:  # noqa: BLE001 - best-effort teardown
                        pass
                for index in range(old_count, new_count):
                    self._remove_shard_dir(index)
            else:
                # shrink: destinations are surviving shards that may have
                # imported slices — durably detach them; the removed
                # source still holds every moved owner
                for move in manifest.get("moves", []):
                    try:
                        self._shard_call(
                            int(move["destination"]),
                            "POST",
                            "/slice/detach",
                            {"owners": move["owners"]},
                            patience=min(10.0, self._shard_patience),
                        )
                    except RebalanceError as detach_error:
                        self._log(
                            "rollback detach on shard "
                            f"{move['destination']} failed: {detach_error}"
                        )
        finally:
            manifest["status"] = "aborted"
            manifest["error"] = error
            self._journal()
            self._persist_topology(old_count)
            self._slices = {}

    # ------------------------------------------------------------------
    # gates, journaling, plumbing
    # ------------------------------------------------------------------
    def _gate(self, phase: str) -> None:
        """Pre-cutover boundary: honor pause_before and abort requests."""
        if self._abort.is_set():
            raise _AbortRequested()
        self._pause_gate(phase)
        if self._abort.is_set():
            raise _AbortRequested()

    def _pause_gate(self, phase: str) -> None:
        """Pause-only boundary (post-cutover phases cannot abort)."""
        if self._pause_before != phase or self._resume.is_set():
            return
        self._paused_at = phase
        self._log(f"rebalance paused before {phase}")
        while not self._resume.wait(timeout=0.1):
            if self._abort.is_set():
                break
        self._paused_at = None

    def _set_phase(self, phase: str) -> None:
        self._manifest["phase"] = phase
        self._journal()

    def _journal(self) -> None:
        if self._checkpoints is not None and self._manifest is not None:
            self._checkpoints.save(MANIFEST_KEY, self._manifest)
        exit_after = os.environ.get(EXIT_AFTER_ENV)
        if (
            exit_after
            and self._manifest is not None
            and self._manifest.get("status") == "active"
            and self._manifest.get("phase") == exit_after
        ):
            # chaos hook: die like a kill -9 the instant this phase is
            # durable, so the recovery matrix is deterministic
            os._exit(REBALANCE_EXIT_CODE)

    def _persist_topology(self, count: int) -> None:
        if self._checkpoints is not None:
            self._checkpoints.save(
                TOPOLOGY_KEY,
                {
                    "count": int(count),
                    "replicas": self._router.shard_map.replicas,
                },
            )

    def _new_map(self) -> ShardMap:
        return self._router.shard_map.resized(
            int(self._manifest["new_count"])
        )

    def _remove_shard_dir(self, index: int) -> None:
        if self._wal_root is not None:
            shutil.rmtree(self._wal_root / f"shard-{index}", ignore_errors=True)

    def _shard_call(
        self,
        shard: int,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        *,
        patience: float | None = None,
    ) -> dict[str, Any]:
        """One JSON call to a shard, patient across supervisor restarts.

        Connection failures and 5xx answers are retried until
        ``patience`` runs out — a shard killed mid-phase comes back on
        the same WAL dir, and the phase call simply lands on the
        restarted worker.  Non-retryable HTTP errors (the 409 digest
        conflict, 4xx) raise immediately.
        """
        deadline = time.monotonic() + (
            self._shard_patience if patience is None else patience
        )
        last_error = f"shard {shard} never became addressable"
        while time.monotonic() < deadline:
            url = self._supervisor.url_of(shard)
            if url is None:
                time.sleep(0.1)
                continue
            data = None
            headers = {}
            if body is not None:
                data = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            request = urllib.request.Request(
                url + path, data=data, headers=headers, method=method
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self._http_timeout
                ) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as error:
                status = int(error.code)
                try:
                    document = json.loads(error.read().decode("utf-8"))
                except Exception:  # noqa: BLE001 - non-JSON error body
                    document = {}
                if status in (502, 503, 504):
                    last_error = (
                        f"shard {shard} answered {status}: "
                        f"{document.get('error', '')}"
                    )
                    time.sleep(0.2)
                    continue
                raise RebalanceError(
                    f"shard {shard} {method} {path} answered {status}: "
                    f"{document.get('error', '')}",
                    phase=(self._manifest or {}).get("phase"),
                ) from error
            except (
                urllib.error.URLError,
                ConnectionError,
                OSError,
                json.JSONDecodeError,
            ) as error:
                last_error = f"shard {shard} unreachable: {error}"
                time.sleep(0.2)
                continue
        raise RebalanceError(
            f"{method} {path} failed: {last_error}",
            phase=(self._manifest or {}).get("phase"),
        )


__all__ = [
    "EXIT_AFTER_ENV",
    "MANIFEST_KEY",
    "PHASES",
    "REBALANCE_EXIT_CODE",
    "RebalanceCoordinator",
    "TOPOLOGY_KEY",
    "effective_topology",
    "phase_reached",
]
