"""Write-ahead durability for the owner store.

Owner labels are the scarcest resource in the paper's loop (3 per round,
thousands of strangers per owner), and the serving graph mutates
continuously — so a crash that loses acknowledged mutations or granted
labels is the costliest possible failure.  This module makes the store
crash-safe with the classic two-file scheme:

* :class:`WriteAheadLog` — an append-only JSON-lines log of every store
  mutation.  Each record is one line, ``<crc32-hex> <compact-json>\\n``,
  fsync'd according to policy before the mutation is acknowledged.  A
  torn *final* record — the signature of a crash mid-write — fails its
  checksum and is truncated on recovery; a corrupt record *followed by
  valid ones* is real corruption and refuses to load.
* :class:`DurableOwnerStore` — an :class:`~repro.service.OwnerStore`
  whose mutations are logged write-ahead, with periodic compaction into
  an atomic snapshot file (the temp+rename+fsync machinery of
  :class:`repro.io.checkpoint.CheckpointStore`).  Recovery = load the
  snapshot, replay the WAL tail past the snapshot's sequence number.

The durability contract, pinned by ``tests/service/test_chaos.py``
against ``kill -9``: **no acknowledged mutation is ever lost**.  A
mutation in flight at the crash (logged but unacknowledged, or torn) may
or may not survive — both outcomes are correct, exactly like a client
write that timed out.

When exactly is an acknowledged mutation on disk?  Per fsync policy:

* ``"always"`` — fsync'd inside :meth:`WriteAheadLog.append`, before the
  mutation is applied in memory and before the caller can acknowledge.
  One fsync per mutation; the durability contract holds.
* ``"group"`` — appended (write + flush, no fsync) inside ``append``,
  then fsync'd by the :meth:`WriteAheadLog.wait_durable` commit barrier
  **before the caller acknowledges**.  Concurrent mutations that arrive
  while a sync is in flight share the next barrier, so one fsync covers
  a whole batch.  The mutation is applied in memory *before* it is
  durable (memtable-style; apply order equals WAL order), but
  :class:`DurableOwnerStore` only returns to its caller — and hence the
  HTTP layer only acks — after ``wait_durable``.  The durability
  contract holds, at a fraction of the fsync cost.
* ``"batch"`` — **crash-unsafe**: ``append`` returns (and the mutation
  is acked) after a buffered write; fsync happens only every
  ``batch_size``-th append or on :meth:`WriteAheadLog.flush`.  Up to
  ``batch_size - 1`` *acknowledged* mutations can be lost to a crash or
  power failure.  Kept only as a benchmark reference point — use
  ``"group"`` for batched fsyncs without the durability hole.
* ``"never"`` — **crash-unsafe**: no fsync at all; the OS flushes
  whenever it pleases.  For measuring the raw fsync tax.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from ..errors import (
    GraphError,
    RebalanceError,
    SerializationError,
    UnknownUserError,
    WalError,
)
from ..graph.profile import Profile
from ..graph.social_graph import SocialGraph
from ..io.checkpoint import CheckpointStore
from ..io.dataset import owner_from_dict, owner_to_dict
from ..io.serialization import (
    graph_from_json,
    graph_to_json,
    profile_from_dict,
    profile_to_dict,
)
from ..synth.population import StudyPopulation
from ..types import RiskLabel, UserId
from .store import OwnerEntry, OwnerStore

_FORMAT_VERSION = 1

#: File names inside a ``--wal-dir``.
WAL_FILENAME = "mutations.wal"
SNAPSHOT_KEY = "store-snapshot"

#: How the WAL reaches the platter.  ``"always"`` and ``"group"`` are
#: crash-safe (acks only after fsync); ``"batch"`` and ``"never"`` are
#: not (see the module docstring for the exact contract of each).
FSYNC_POLICIES = ("always", "group", "batch", "never")


# ---------------------------------------------------------------------------
# record encoding
# ---------------------------------------------------------------------------
def encode_record(record: dict[str, Any]) -> bytes:
    """One WAL line: crc32 of the compact-JSON payload, space, payload."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    data = payload.encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(data), data)


def decode_record(line: bytes) -> dict[str, Any]:
    """Inverse of :func:`encode_record`; raises :class:`WalError`."""
    try:
        checksum, payload = line.split(b" ", 1)
        expected = int(checksum, 16)
    except ValueError as error:
        raise WalError(f"unparseable WAL line: {error}") from error
    if zlib.crc32(payload) != expected:
        raise WalError("WAL record failed its checksum")
    try:
        record = json.loads(payload)
    except json.JSONDecodeError as error:
        raise WalError(f"WAL record is not valid JSON: {error}") from error
    if not isinstance(record, dict) or "seq" not in record or "op" not in record:
        raise WalError(f"WAL record missing seq/op: {record!r}")
    return record


def read_wal(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Read every intact record; returns ``(records, torn_bytes)``.

    A trailing record that fails to decode (torn write / crash mid-
    append) is dropped and its byte count reported.  A failing record
    *followed by an intact one* means mid-log corruption, which recovery
    must not paper over — that raises.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    data = path.read_bytes()
    records: list[dict[str, Any]] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:  # final line never got its newline: torn
            return records, len(data) - offset
        line = data[offset : newline + 1]
        try:
            records.append(decode_record(line[:-1]))
        except WalError:
            remainder = data[newline + 1 :]
            if remainder.strip():
                raise WalError(
                    f"corrupt WAL record mid-log at byte {offset} of {path}"
                ) from None
            return records, len(data) - offset
        offset = newline + 1
    return records, 0


# ---------------------------------------------------------------------------
# owner-entry rows: the unit of snapshots *and* of migration slices
# ---------------------------------------------------------------------------
def owner_entry_to_dict(entry: OwnerEntry) -> dict[str, Any]:
    """One owner entry as a deterministic JSON-ready row.

    Captures everything that makes a served digest: the owner (with its
    accumulated ground truth and thetas), the **global cohort index**
    that derives the session seed, the cache-keying version, the
    universe, and granted labels.  Keys and collections are sorted, so
    equal entries serialize to byte-equal rows — the property migration
    digests rely on.
    """
    return {
        "owner": owner_to_dict(entry.owner),
        "index": entry.index,
        "version": entry.version,
        "universe": sorted(entry.universe),
        "labels": {
            str(stranger): int(label)
            for stranger, label in sorted(entry.labels.items())
        },
    }


def owner_entry_from_dict(row: Mapping[str, Any]) -> OwnerEntry:
    """Inverse of :func:`owner_entry_to_dict`."""
    return OwnerEntry(
        owner=owner_from_dict(row["owner"]),
        index=int(row["index"]),
        version=int(row["version"]),
        universe={int(user) for user in row["universe"]},
        labels={
            int(stranger): RiskLabel(int(label))
            for stranger, label in row.get("labels", {}).items()
        },
    )


def slice_digest(rows: Sequence[Mapping[str, Any]]) -> str:
    """SHA-256 over the canonical JSON of owner rows, sorted by owner id.

    Both sides of a migration compute this independently — the source
    over what it exported, the destination over what it replayed — and
    the coordinator refuses cutover unless they match.
    """
    canonical = sorted(rows, key=lambda row: int(row["owner"]["user_id"]))
    payload = json.dumps(
        canonical, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def graph_digest(graph: SocialGraph) -> str:
    """SHA-256 of the graph's canonical JSON serialization."""
    return hashlib.sha256(graph_to_json(graph).encode("utf-8")).hexdigest()


def export_slice(
    store: OwnerStore, owner_ids: Iterable[UserId]
) -> dict[str, Any]:
    """Snapshot the moved owners' full state for WAL-slice handoff.

    Returns a self-verifying document: the owners' rows plus the
    source's current graph (a joining shard booted from the seed cohort
    and missed every broadcast since, so it adopts the graph wholesale),
    each with its digest.  Unknown owners raise — the migration plan
    must only name owners the source actually holds.
    """
    with store._lock:
        rows = [
            owner_entry_to_dict(store.get(int(owner_id)))
            for owner_id in owner_ids
        ]
        graph_doc = json.loads(graph_to_json(store.graph))
        digest = graph_digest(store.graph)
    return {
        "version": _FORMAT_VERSION,
        "owners": sorted(rows, key=lambda row: int(row["owner"]["user_id"])),
        "owners_digest": slice_digest(rows),
        "graph": graph_doc,
        "graph_digest": digest,
    }


def import_slice(
    store: OwnerStore,
    document: Mapping[str, Any],
    *,
    adopt_graph: bool = False,
) -> dict[str, Any]:
    """Replay an exported slice into the destination store.

    With ``adopt_graph`` the destination replaces its graph with the
    source's (the joining-shard case); without it the destination must
    already hold a byte-identical graph — broadcasts keep siblings in
    sync, and a digest mismatch here means they diverged, which must
    abort the migration rather than be papered over.

    Idempotent (attach replaces), so a crashed transfer can simply be
    re-run.  Returns ``{"attached": n, "owners_digest": ...}`` where the
    digest is recomputed from the *replayed* entries — the verify phase
    compares it against the source's.
    """
    if document.get("version") != _FORMAT_VERSION:
        raise RebalanceError(
            f"unsupported slice version: {document.get('version')!r}",
            phase="transfer",
        )
    rows = list(document["owners"])
    if slice_digest(rows) != document.get("owners_digest"):
        raise RebalanceError(
            "slice failed its owners digest in transit", phase="transfer"
        )
    if adopt_graph:
        store.replace_graph(graph_from_json(json.dumps(document["graph"])))
    elif graph_digest(store.graph) != document.get("graph_digest"):
        raise RebalanceError(
            "destination graph diverged from source graph; refusing to "
            "import a slice across inconsistent graphs",
            phase="transfer",
        )
    entries = [owner_entry_from_dict(row) for row in rows]
    for entry in entries:
        store.attach_entry(entry)
    replayed = [
        owner_entry_to_dict(store.get(entry.owner.user_id))
        for entry in entries
    ]
    return {"attached": len(entries), "owners_digest": slice_digest(replayed)}


def detach_slice(
    store: OwnerStore, owner_ids: Iterable[UserId]
) -> dict[str, Any]:
    """Drop migrated owners from the source store (post-cutover).

    Returns how many were actually present — replays of this step after
    a crash see already-detached owners and count zero, which is fine.
    """
    detached = sum(
        1 for owner_id in owner_ids if store.detach_owner(int(owner_id))
    )
    return {"detached": detached}


def state_digest(
    store: OwnerStore, owner_ids: Iterable[UserId]
) -> dict[str, Any]:
    """Digest of the named owners' current state on this store.

    ``present`` lists which of them the store actually holds; the digest
    covers only those.  Used by the verify phase and by the cutover
    drift re-check (an in-flight request that raced the fence may have
    changed a moved owner after export — the coordinator detects that
    here and re-exports).
    """
    with store._lock:
        present = [
            int(owner_id)
            for owner_id in owner_ids
            if store.has_owner(int(owner_id))
        ]
        rows = [owner_entry_to_dict(store.get(owner_id)) for owner_id in present]
    return {
        "present": sorted(present),
        "owners_digest": slice_digest(rows),
        "graph_digest": graph_digest(store.graph),
    }


# ---------------------------------------------------------------------------
# the log
# ---------------------------------------------------------------------------
class WriteAheadLog:
    """Append-only, checksummed, fsync'd mutation log.

    Parameters
    ----------
    path:
        The log file (created if missing).
    fsync:
        ``"always"`` — fsync inside every :meth:`append` (full
        durability, the default); ``"group"`` — group commit: ``append``
        only writes, and :meth:`wait_durable` runs a commit barrier that
        batches every record appended since the last sync into one
        fsync, acking each only once its batch is durable (full
        durability at a fraction of the fsync cost — the async serving
        default); ``"batch"`` — **crash-unsafe**: ``append`` returns
        before any fsync, syncing only once per ``batch_size`` appends,
        so up to ``batch_size - 1`` acknowledged mutations can be lost;
        ``"never"`` — **crash-unsafe**: leave flushing to the OS (for
        benchmarking the fsync cost).
    batch_size:
        Appends per deferred sync under the ``"batch"`` policy.
    start_seq:
        Sequence number to continue from (recovery sets this).
    injector:
        Optional :class:`~repro.faults.ServiceFaultInjector` whose hooks
        fire at the commit boundaries.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: str = "always",
        batch_size: int = 16,
        start_seq: int = 0,
        injector=None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r}; expected one of "
                f"{FSYNC_POLICIES}"
            )
        if batch_size < 1:
            raise WalError(f"batch_size must be >= 1, got {batch_size}")
        self._path = Path(path)
        self._policy = fsync
        self._batch_size = batch_size
        self._injector = injector
        self._lock = threading.Lock()
        self._file = open(self._path, "ab")
        self._seq = start_seq
        self._unsynced = 0
        self._appends = 0
        self._syncs = 0
        self._closed = False
        # group-commit barrier state, guarded by _commit_cond (never
        # held while _lock is taken *by a waiter*; the leader takes
        # _lock only after releasing _commit_cond, so ordering is safe)
        self._commit_cond = threading.Condition()
        self._durable_seq = start_seq
        self._sync_leader = False
        self._commit_error: WalError | None = None
        self._group_commits = 0
        self._group_batch_total = 0
        self._group_batch_max = 0

    @property
    def path(self) -> Path:
        """The backing log file."""
        return self._path

    @property
    def seq(self) -> int:
        """Sequence number of the most recently appended record."""
        with self._lock:
            return self._seq

    def stats(self) -> dict[str, Any]:
        """Appends, fsyncs, and policy — for metrics and benches.

        Under the ``"group"`` policy a ``"group"`` block reports the
        barrier's behavior: how many group commits ran, the mean and max
        records per fsync, and the highest durable sequence number.
        """
        with self._lock:
            document: dict[str, Any] = {
                "appends": self._appends,
                "fsyncs": self._syncs,
                "policy": self._policy,
                "seq": self._seq,
            }
        if self._policy == "group":
            with self._commit_cond:
                commits = self._group_commits
                document["group"] = {
                    "commits": commits,
                    "batch_max": self._group_batch_max,
                    "batch_mean": (
                        round(self._group_batch_total / commits, 3)
                        if commits
                        else 0.0
                    ),
                    "durable_seq": self._durable_seq,
                }
        return document

    def append(self, op: str, args: dict[str, Any]) -> int:
        """Log one mutation; returns its sequence number.

        Under ``"always"`` the record is fsync'd when this returns and
        the caller may apply and acknowledge immediately.  Under
        ``"group"`` the record is written but **not yet durable**: the
        caller must apply, then call :meth:`wait_durable` with the
        returned sequence number before acknowledging.  Under
        ``"batch"``/``"never"`` the record may sit in OS buffers —
        those policies trade the durability contract away.

        Raises
        ------
        WalError
            When the log is closed, poisoned by an earlier group-commit
            fsync failure, or the disk refuses the write/sync; the
            caller must *not* apply or acknowledge the mutation.
        """
        with self._lock:
            if self._closed:
                raise WalError("write-ahead log is closed")
            if self._commit_error is not None:
                raise WalError(
                    "write-ahead log poisoned by an earlier group-commit "
                    f"fsync failure: {self._commit_error}"
                )
            seq = self._seq + 1
            line = encode_record({"seq": seq, "op": op, "args": args})
            if self._injector is not None:
                line = self._injector.mangle_record(seq, line)
            try:
                self._file.write(line)
                self._file.flush()
            except OSError as error:
                raise WalError(f"WAL append failed: {error}") from error
            if self._injector is not None:
                self._injector.after_write(seq)
            self._seq = seq
            self._appends += 1
            self._unsynced += 1
            if self._policy == "always" or (
                self._policy == "batch" and self._unsynced >= self._batch_size
            ):
                self._sync_locked()
            if self._injector is not None and self._policy != "group":
                self._injector.after_commit(seq)
            return seq

    def wait_durable(self, seq: int) -> None:
        """Block until record ``seq`` is fsync'd; the group-commit barrier.

        A no-op for every policy but ``"group"`` (``"always"`` already
        synced inside :meth:`append`; ``"batch"``/``"never"`` never
        promised durability).  Under ``"group"``, the first waiter to
        find no sync in flight becomes the *leader*: it fsyncs once,
        covering every record appended so far, then wakes all followers
        — which is how concurrent mutations share one fsync.  Followers
        whose record the leader's sync covered return without syncing;
        ones that appended after the leader took its cut run the next
        barrier round.

        Raises
        ------
        WalError
            When the fsync failed.  Batched records may already be
            applied in memory without being durable, so a failure here
            *poisons the log*: every subsequent append or wait raises
            until the process restarts and recovers from disk.
        """
        if self._policy != "group":
            return
        while True:
            with self._commit_cond:
                if self._commit_error is not None and seq > self._durable_seq:
                    raise WalError(
                        "group commit failed; mutation is applied in memory "
                        f"but NOT durable: {self._commit_error}"
                    )
                if seq <= self._durable_seq:
                    break
                if self._sync_leader:
                    self._commit_cond.wait()
                    continue
                self._sync_leader = True
            # leader: sync outside _commit_cond so followers can queue up
            error: WalError | None = None
            with self._lock:
                high = self._seq
                try:
                    if not self._closed:
                        self._sync_locked()
                except WalError as sync_error:
                    error = sync_error
            with self._commit_cond:
                self._sync_leader = False
                if error is None:
                    batch = high - self._durable_seq
                    if batch > 0:
                        self._group_commits += 1
                        self._group_batch_total += batch
                        self._group_batch_max = max(
                            self._group_batch_max, batch
                        )
                    self._durable_seq = max(self._durable_seq, high)
                else:
                    self._commit_error = error
                self._commit_cond.notify_all()
            if error is not None:
                raise WalError(
                    "group commit failed; mutation is applied in memory "
                    f"but NOT durable: {error}"
                )
        if self._injector is not None:
            self._injector.after_commit(seq)

    def _mark_durable(self, seq: int) -> None:
        """Record that everything up to ``seq`` reached disk; wake waiters."""
        with self._commit_cond:
            self._durable_seq = max(self._durable_seq, seq)
            self._commit_cond.notify_all()

    def flush(self) -> None:
        """Force any batched appends to disk."""
        with self._lock:
            if not self._closed and self._unsynced:
                self._sync_locked()
            seq = self._seq
        self._mark_durable(seq)

    def reset(self, seq: int | None = None) -> None:
        """Truncate the log (after compaction); sequence numbers continue.

        Every record folded into the (fsync'd, atomically renamed)
        snapshot is durable by construction, so truncation marks the
        whole log durable and wakes any group-commit waiters.
        """
        with self._lock:
            self._file.close()
            self._file = open(self._path, "wb")
            self._unsynced = 0
            if seq is not None:
                self._seq = seq
            durable = self._seq
        self._mark_durable(durable)

    def close(self) -> None:
        """Flush and close; further appends raise."""
        with self._lock:
            if self._closed:
                return
            if self._unsynced:
                try:
                    self._sync_locked()
                except WalError:  # pragma: no cover - best-effort close
                    pass
            self._file.close()
            self._closed = True
            seq = self._seq
        self._mark_durable(seq)

    def _sync_locked(self) -> None:
        try:
            if self._injector is not None:
                self._injector.before_fsync()
            if self._policy != "never":
                os.fsync(self._file.fileno())
                self._syncs += 1
            self._unsynced = 0
        except OSError as error:
            raise WalError(f"WAL fsync failed: {error}") from error


# ---------------------------------------------------------------------------
# recovery bookkeeping
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`DurableOwnerStore.open` found on disk."""

    source: str  # "fresh" | "recovered"
    snapshot_seq: int
    replayed: int
    truncated_bytes: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view for ``/healthz``."""
        return {
            "source": self.source,
            "snapshot_seq": self.snapshot_seq,
            "replayed": self.replayed,
            "truncated_bytes": self.truncated_bytes,
        }


# ---------------------------------------------------------------------------
# the durable store
# ---------------------------------------------------------------------------
class DurableOwnerStore(OwnerStore):
    """An owner store whose every mutation is logged write-ahead.

    Construct via :meth:`open` (recover-or-seed) — the plain constructor
    wires an already-populated store to an already-positioned log.

    Mutation protocol: under the store lock, validate the arguments,
    append to the WAL (fsync per policy), apply in memory, auto-compact
    every ``compact_every`` mutations; then — with the lock released —
    block on :meth:`WriteAheadLog.wait_durable` before returning.
    Because validation precedes logging, every logged record replays
    cleanly; because logging precedes applying (and the apply happens
    under the same lock), replay order equals memory order; because
    nothing returns before ``wait_durable``, an *acknowledged* mutation
    is always on disk under the crash-safe policies (``"always"`` syncs
    inside the append, ``"group"`` at the barrier).  Waiting outside
    the store lock is what lets concurrent mutations pile into one
    group-commit fsync instead of serializing on it.
    """

    def __init__(
        self,
        graph: SocialGraph,
        wal: WriteAheadLog,
        checkpoints: CheckpointStore,
        *,
        compact_every: int | None = 1024,
        recovery: RecoveryReport | None = None,
    ) -> None:
        super().__init__(graph)
        if compact_every is not None and compact_every < 1:
            raise WalError(
                f"compact_every must be >= 1 or None, got {compact_every}"
            )
        self._wal = wal
        self._checkpoints = checkpoints
        self._compact_every = compact_every
        self._since_compaction = 0
        self.recovery = recovery or RecoveryReport("fresh", 0, 0, 0)

    # ------------------------------------------------------------------
    # open / recover
    # ------------------------------------------------------------------
    @staticmethod
    def has_snapshot(wal_dir: str | Path) -> bool:
        """Whether ``wal_dir`` holds a recoverable store."""
        return (Path(wal_dir) / f"{SNAPSHOT_KEY}.json").exists()

    @classmethod
    def open(
        cls,
        wal_dir: str | Path,
        population: StudyPopulation | None = None,
        *,
        fsync: str = "always",
        batch_size: int = 16,
        compact_every: int | None = 1024,
        injector=None,
        shard_map=None,
        shard_index: int | None = None,
        join_empty: bool = False,
    ) -> "DurableOwnerStore":
        """Recover a store from ``wal_dir``, or seed one from a cohort.

        With a snapshot present: load it, replay the WAL tail (records
        past the snapshot's sequence number), truncate any torn final
        record, and continue — ``population`` is ignored (the snapshot
        already holds this shard's owner subset with global indices).
        Without one: register every owner of ``population`` — or, with
        ``shard_map``/``shard_index``, only this shard's owners, each
        keeping its global cohort index — and write the initial snapshot
        so the next boot recovers instead of regenerating.

        ``join_empty`` seeds the cohort graph but registers **zero**
        owners: the boot mode of a shard joining a live rebalance, whose
        owners arrive via slice import instead of the generator.
        """
        if (shard_map is None) != (shard_index is None):
            raise ValueError(
                "shard_map and shard_index must be given together"
            )
        wal_dir = Path(wal_dir)
        checkpoints = CheckpointStore(wal_dir)
        wal_path = wal_dir / WAL_FILENAME
        snapshot = checkpoints.load(SNAPSHOT_KEY)
        if snapshot is None:
            if population is None:
                raise WalError(
                    f"no snapshot under {wal_dir} and no population to "
                    "seed one from"
                )
            wal = WriteAheadLog(
                wal_path,
                fsync=fsync,
                batch_size=batch_size,
                injector=injector,
            )
            store = cls(
                population.graph,
                wal,
                checkpoints,
                compact_every=compact_every,
            )
            for global_index, owner in enumerate(population.owners):
                if join_empty:
                    break
                if (
                    shard_map is not None
                    and shard_map.shard_of(owner.user_id) != shard_index
                ):
                    continue
                handle = population.handles[owner.user_id]
                universe = {owner.user_id, *handle.friends, *handle.strangers}
                OwnerStore.register(
                    store, owner, universe=universe, index=global_index
                )
            store._save_snapshot()
            return store

        records, truncated = read_wal(wal_path)
        snapshot_seq = int(snapshot.get("seq", 0))
        if truncated:
            with open(wal_path, "r+b") as handle:
                handle.seek(0, os.SEEK_END)
                handle.truncate(handle.tell() - truncated)
        graph, entries = cls._restore_snapshot(snapshot)
        tail = [r for r in records if int(r["seq"]) > snapshot_seq]
        last_seq = max(
            [snapshot_seq, *(int(r["seq"]) for r in records)], default=0
        )
        wal = WriteAheadLog(
            wal_path,
            fsync=fsync,
            batch_size=batch_size,
            start_seq=last_seq,
            injector=injector,
        )
        store = cls(
            graph,
            wal,
            checkpoints,
            compact_every=compact_every,
            recovery=RecoveryReport(
                "recovered", snapshot_seq, len(tail), truncated
            ),
        )
        for entry in entries:
            store._entries[entry.owner.user_id] = entry
            for user in entry.universe:
                store._user_owners.setdefault(user, set()).add(
                    entry.owner.user_id
                )
        for record in tail:
            store._replay(record)
        return store

    # ------------------------------------------------------------------
    # logged mutations
    # ------------------------------------------------------------------
    def register(self, owner, universe=None, index=None) -> OwnerEntry:
        """Register one owner, durably (with its global cohort index)."""
        with self._lock:
            resolved = set(universe or {owner.user_id})
            if index is None:
                index = len(self._entries)
            seq = self._append(
                "register",
                {
                    "owner": owner_to_dict(owner),
                    "universe": sorted(resolved),
                    "index": int(index),
                },
            )
            entry = super().register(owner, universe=resolved, index=index)
            self._maybe_compact()
        self._wal.wait_durable(seq)
        return entry

    def add_user(self, profile: Profile, owner_id: UserId) -> None:
        """Durably add a new user inside one owner's universe."""
        with self._lock:
            self.get(owner_id)  # validate before logging
            seq = self._append(
                "add_user",
                {"profile": profile_to_dict(profile), "owner": owner_id},
            )
            super().add_user(profile, owner_id)
            self._maybe_compact()
        self._wal.wait_durable(seq)

    def update_profile(self, profile: Profile) -> frozenset[UserId]:
        """Durably replace a user's profile."""
        with self._lock:
            seq = self._append(
                "update_profile", {"profile": profile_to_dict(profile)}
            )
            affected = super().update_profile(profile)
            self._maybe_compact()
        self._wal.wait_durable(seq)
        return affected

    def add_friendship(self, a: UserId, b: UserId) -> frozenset[UserId]:
        """Durably create the edge ``{a, b}``."""
        with self._lock:
            self._validate_edge(a, b)
            seq = self._append("add_friendship", {"a": a, "b": b})
            affected = super().add_friendship(a, b)
            self._maybe_compact()
        self._wal.wait_durable(seq)
        return affected

    def remove_friendship(self, a: UserId, b: UserId) -> frozenset[UserId]:
        """Durably remove the edge ``{a, b}``."""
        with self._lock:
            self._validate_edge(a, b)
            seq = self._append("remove_friendship", {"a": a, "b": b})
            affected = super().remove_friendship(a, b)
            self._maybe_compact()
        self._wal.wait_durable(seq)
        return affected

    def grant_labels(
        self, owner_id: UserId, labels: Mapping[UserId, int]
    ) -> int:
        """Durably record oracle-granted labels (only the new ones)."""
        with self._lock:
            entry = self.get(owner_id)
            delta = {
                int(stranger): RiskLabel(int(label))
                for stranger, label in sorted(labels.items())
                if entry.labels.get(int(stranger)) != RiskLabel(int(label))
            }
            if not delta:
                return 0
            seq = self._append(
                "grant_labels",
                {
                    "owner": owner_id,
                    "labels": {
                        str(stranger): int(label)
                        for stranger, label in delta.items()
                    },
                },
            )
            granted = super().grant_labels(owner_id, delta)
            self._maybe_compact()
        self._wal.wait_durable(seq)
        return granted

    def touch(self, owner_id: UserId) -> int:
        """Durably bump one owner's version.

        Logged so that version numbers — which key the engine's cache
        and are visible via ``/owners`` — agree across restarts.
        """
        with self._lock:
            self.get(owner_id)
            seq = self._append("touch", {"owner": owner_id})
            version = super().touch(owner_id)
            self._maybe_compact()
        self._wal.wait_durable(seq)
        return version

    def attach_entry(self, entry: OwnerEntry) -> OwnerEntry:
        """Durably adopt a migrated entry (WAL-slice handoff, dest side).

        The full row is logged, so a destination killed between import
        and its next compaction replays the attach from its own WAL —
        the handoff is acknowledged only once it can survive a crash.
        """
        with self._lock:
            seq = self._append(
                "attach_owner", {"entry": owner_entry_to_dict(entry)}
            )
            attached = super().attach_entry(entry)
            self._maybe_compact()
        self._wal.wait_durable(seq)
        return attached

    def detach_owner(self, owner_id: UserId) -> bool:
        """Durably drop a migrated owner (handoff, source side).

        Nothing is logged when the owner is already gone — replayed
        truncations must not bloat the WAL.
        """
        with self._lock:
            if not self.has_owner(owner_id):
                return False
            seq = self._append("detach_owner", {"owner": int(owner_id)})
            detached = super().detach_owner(owner_id)
            self._maybe_compact()
        self._wal.wait_durable(seq)
        return detached

    def replace_graph(self, graph: SocialGraph) -> None:
        """Durably adopt a replacement graph (joining-shard import).

        The graph is logged wholesale: a joining shard's snapshot holds
        the *seed* graph, so without this record a crash between import
        and compaction would replay attach records against a graph
        missing every pre-resize broadcast.
        """
        with self._lock:
            seq = self._append(
                "adopt_graph", {"graph": json.loads(graph_to_json(graph))}
            )
            super().replace_graph(graph)
            self._maybe_compact()
        self._wal.wait_durable(seq)

    # ------------------------------------------------------------------
    # durability lifecycle
    # ------------------------------------------------------------------
    @property
    def wal(self) -> WriteAheadLog:
        """The backing log (stats, flush)."""
        return self._wal

    @property
    def last_seq(self) -> int:
        """Sequence number of the last durable mutation."""
        return self._wal.seq

    def compact(self) -> int:
        """Fold the WAL into a fresh snapshot; returns the covered seq.

        Safe against a crash at any point: the snapshot is written
        atomically (temp + fsync + rename + dir fsync) *before* the log
        is truncated, and replay skips records at or below the
        snapshot's sequence number — so a crash between the two steps
        merely replays no-ops' worth of already-folded history... which
        the seq filter drops.
        """
        with self._lock:
            return self._save_snapshot()

    def flush(self) -> None:
        """Force batched WAL appends to disk."""
        self._wal.flush()

    def close(self) -> None:
        """Flush and close the WAL."""
        self._wal.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _append(self, op: str, args: dict[str, Any]) -> int:
        seq = self._wal.append(op, args)
        self._since_compaction += 1
        return seq

    def _maybe_compact(self) -> None:
        """Compact once ``compact_every`` mutations accumulate.

        Called (under the store lock) *after* a mutation applies, never
        before: the snapshot covers the WAL's current sequence number,
        so compacting between append and apply would truncate a record
        whose effect the snapshot does not yet hold — losing an
        acknowledged mutation to the very mechanism meant to preserve
        it.
        """
        if (
            self._compact_every is not None
            and self._since_compaction >= self._compact_every
        ):
            self._save_snapshot()

    def _validate_edge(self, a: UserId, b: UserId) -> None:
        # surface graph errors *before* the WAL sees the record, so every
        # logged mutation is guaranteed to replay cleanly
        if a == b:
            raise GraphError(f"self-friendship rejected for user {a}")
        for user in (a, b):
            if user not in self._graph:
                raise UnknownUserError(user)

    def _save_snapshot(self) -> int:
        seq = self._wal.seq
        document = {
            "version": _FORMAT_VERSION,
            "seq": seq,
            "graph": json.loads(graph_to_json(self._graph)),
            "owners": [
                owner_entry_to_dict(entry)
                for entry in sorted(
                    self._entries.values(), key=lambda e: e.index
                )
            ],
        }
        self._checkpoints.save(SNAPSHOT_KEY, document)
        self._wal.reset()
        self._since_compaction = 0
        return seq

    @staticmethod
    def _restore_snapshot(
        document: dict[str, Any],
    ) -> tuple[SocialGraph, list[OwnerEntry]]:
        if document.get("version") != _FORMAT_VERSION:
            raise WalError(
                f"unsupported store snapshot version: "
                f"{document.get('version')!r}"
            )
        try:
            graph = graph_from_json(json.dumps(document["graph"]))
            entries = [
                owner_entry_from_dict(row) for row in document["owners"]
            ]
        except (KeyError, TypeError, ValueError, SerializationError) as error:
            raise WalError(f"malformed store snapshot: {error}") from error
        entries.sort(key=lambda entry: entry.index)
        return graph, entries

    def _replay(self, record: dict[str, Any]) -> None:
        op, args = record["op"], record.get("args", {})
        try:
            if op == "register":
                index = args.get("index")
                OwnerStore.register(
                    self,
                    owner_from_dict(args["owner"]),
                    universe={int(user) for user in args["universe"]},
                    index=None if index is None else int(index),
                )
            elif op == "add_user":
                OwnerStore.add_user(
                    self,
                    profile_from_dict(args["profile"]),
                    owner_id=int(args["owner"]),
                )
            elif op == "update_profile":
                OwnerStore.update_profile(
                    self, profile_from_dict(args["profile"])
                )
            elif op == "add_friendship":
                OwnerStore.add_friendship(self, int(args["a"]), int(args["b"]))
            elif op == "remove_friendship":
                OwnerStore.remove_friendship(
                    self, int(args["a"]), int(args["b"])
                )
            elif op == "grant_labels":
                OwnerStore.grant_labels(
                    self,
                    int(args["owner"]),
                    {
                        int(stranger): int(label)
                        for stranger, label in args["labels"].items()
                    },
                )
            elif op == "touch":
                OwnerStore.touch(self, int(args["owner"]))
            elif op == "attach_owner":
                OwnerStore.attach_entry(
                    self, owner_entry_from_dict(args["entry"])
                )
            elif op == "detach_owner":
                OwnerStore.detach_owner(self, int(args["owner"]))
            elif op == "adopt_graph":
                OwnerStore.replace_graph(
                    self, graph_from_json(json.dumps(args["graph"]))
                )
            else:
                raise WalError(f"unknown WAL op {op!r}")
        except WalError:
            raise
        except Exception as error:
            raise WalError(
                f"WAL record seq={record.get('seq')} op={op!r} failed to "
                f"replay: {error}"
            ) from error


def mutate_store(
    store: OwnerStore, op: str, args: Mapping[str, Any]
) -> dict[str, Any]:
    """Apply one named mutation to a store; the ``POST /mutate`` core.

    Shared by the HTTP layer and tests so the op vocabulary lives in one
    place.  Returns a JSON-ready result: which owners were invalidated,
    their new versions, and (for durable stores) the WAL sequence number
    that makes the mutation acknowledged-and-safe.
    """
    affected: Iterable[UserId]
    if op == "add_friendship":
        affected = store.add_friendship(int(args["a"]), int(args["b"]))
    elif op == "remove_friendship":
        affected = store.remove_friendship(int(args["a"]), int(args["b"]))
    elif op == "update_profile":
        affected = store.update_profile(profile_from_dict(args["profile"]))
    elif op == "add_user":
        owner_id = int(args["owner"])
        store.add_user(profile_from_dict(args["profile"]), owner_id=owner_id)
        affected = {owner_id}
    elif op == "grant_labels":
        owner_id = int(args["owner"])
        store.grant_labels(
            owner_id,
            {
                int(stranger): int(label)
                for stranger, label in dict(args["labels"]).items()
            },
        )
        affected = {owner_id}
    elif op == "touch":
        owner_id = int(args["owner"])
        store.touch(owner_id)
        affected = {owner_id}
    else:
        raise KeyError(op)
    owners = sorted(affected)
    return {
        "ok": True,
        "op": op,
        "affected": owners,
        "versions": {str(o): store.version(o) for o in owners},
        "seq": store.last_seq if isinstance(store, DurableOwnerStore) else None,
    }


#: Ops accepted by :func:`mutate_store` / ``POST /mutate``.
MUTATION_OPS = (
    "add_friendship",
    "remove_friendship",
    "update_profile",
    "add_user",
    "grant_labels",
    "touch",
)

__all__ = [
    "DurableOwnerStore",
    "MUTATION_OPS",
    "RecoveryReport",
    "SNAPSHOT_KEY",
    "WAL_FILENAME",
    "WriteAheadLog",
    "decode_record",
    "detach_slice",
    "encode_record",
    "export_slice",
    "graph_digest",
    "import_slice",
    "mutate_store",
    "owner_entry_from_dict",
    "owner_entry_to_dict",
    "read_wal",
    "slice_digest",
    "state_digest",
]
