"""Fault-isolating shard supervision: spawn, watch, restart, drain.

Each shard worker is a full ``repro-study serve`` subprocess — its own
interpreter, :class:`~repro.service.DurableOwnerStore` WAL directory,
:class:`~repro.service.RiskEngine`, and scheduler — so one shard dying
(OOM kill, segfault, ``kill -9``) cannot take sibling shards' owners
down with it.  :class:`ShardSupervisor` owns those subprocesses:

* **boot** — spawn every worker with ``--port 0`` and learn each bound
  address from its ``serving on http://...`` announcement (no port
  races, ever);
* **watch** — a monitor thread polls process liveness and probes
  ``GET /readyz``; a dead process, or a live-but-unresponsive one
  (``probe_failures_before_restart`` consecutive probe failures), is
  restarted with the *same* argv — same WAL dir — so recovery replays
  the shard's log and serves digest-identical scores;
* **drain** — :meth:`stop` SIGTERMs every worker (each runs its own
  graceful drain) and escalates to ``kill -9`` only past the timeout.

The supervisor never parses scores and holds no owner state; the router
(:mod:`repro.service.router`) asks it one question — :meth:`url_of` —
and treats ``None`` (worker down or rebooting) as "fail fast with 503,
the supervisor is already on it".
"""

from __future__ import annotations

import random
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import ServiceError

#: Announcement line prefix every serve process prints once it is bound.
ANNOUNCEMENT = "serving on "


@dataclass
class ShardSpec:
    """How to (re)start one shard worker."""

    index: int
    argv: list[str]
    #: Extra environment entries merged over ``os.environ`` (None = none).
    env: dict[str, str] | None = None


@dataclass
class _WorkerHandle:
    """Live state of one supervised shard worker."""

    spec: ShardSpec
    process: subprocess.Popen | None = None
    url: str | None = None
    announced: threading.Event = field(default_factory=threading.Event)
    restarts: int = 0
    probe_failures: int = 0
    last_exit_code: int | None = None
    stderr_tail: deque[str] = field(default_factory=lambda: deque(maxlen=40))
    #: Restart timestamps inside the crash-loop window (monotonic clock).
    recent_restarts: deque[float] = field(
        default_factory=lambda: deque(maxlen=32)
    )
    #: Tripped by the crash-loop breaker: no more respawns, ``/shards``
    #: reports the shard as failed until an operator intervenes.
    failed: bool = False
    #: Set when the worker was deliberately retired (shrink rebalance);
    #: the monitor must neither probe nor resurrect it.
    retired: bool = False


class ShardSupervisor:
    """Keeps N shard worker subprocesses alive and addressable.

    Parameters
    ----------
    specs:
        One :class:`ShardSpec` per shard, ``argv`` ready to exec.  The
        worker must announce ``serving on http://host:port`` on stderr
        once bound (``repro-study serve`` does).
    health_interval:
        Seconds between monitor sweeps (liveness poll + readiness probe).
    boot_timeout:
        Seconds to wait for a worker's announcement before declaring the
        boot failed.
    probe_timeout:
        Per-probe HTTP timeout for ``GET /readyz``.
    probe_failures_before_restart:
        Consecutive failed probes (connection-level, not 503s) after
        which a *live* process is presumed hung and force-restarted.
    restart_backoff:
        *Base* of the exponential respawn delay: restart ``k`` within
        the crash-loop window waits ``restart_backoff * 2**(k-1)``
        seconds (capped at ``restart_backoff_cap``), plus seeded jitter
        so a fleet of crashed shards doesn't respawn in lockstep.
    restart_backoff_cap:
        Ceiling on the exponential delay.
    backoff_seed:
        Seed for the jitter PRNG — deterministic backoff schedules in
        tests, decorrelated ones in production (vary the seed).
    crash_loop_threshold:
        Restarts within ``crash_loop_window`` seconds after which the
        breaker trips: the shard is marked failed in ``/shards`` and no
        longer respawned — a persistently-crashing worker (bad disk,
        poisoned WAL) must page an operator, not spin the host.
    crash_loop_window:
        Width of the sliding window the threshold counts within.
    """

    def __init__(
        self,
        specs: Sequence[ShardSpec],
        *,
        health_interval: float = 0.5,
        boot_timeout: float = 120.0,
        probe_timeout: float = 5.0,
        probe_failures_before_restart: int = 3,
        restart_backoff: float = 0.25,
        restart_backoff_cap: float = 15.0,
        backoff_seed: int = 0,
        crash_loop_threshold: int = 5,
        crash_loop_window: float = 30.0,
        log: Callable[[str], None] | None = None,
    ) -> None:
        if not specs:
            raise ServiceError("a shard supervisor needs at least one spec")
        if crash_loop_threshold < 1:
            raise ServiceError(
                f"crash_loop_threshold must be >= 1, got {crash_loop_threshold}"
            )
        self._handles = [_WorkerHandle(spec=spec) for spec in specs]
        self._health_interval = health_interval
        self._boot_timeout = boot_timeout
        self._probe_timeout = probe_timeout
        self._probe_failures_before_restart = probe_failures_before_restart
        self._restart_backoff = restart_backoff
        self._restart_backoff_cap = restart_backoff_cap
        self._jitter = random.Random(backoff_seed)
        self._crash_loop_threshold = crash_loop_threshold
        self._crash_loop_window = crash_loop_window
        self._log = log or (lambda message: None)
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """How many shard workers are supervised."""
        return len(self._handles)

    def start(self) -> None:
        """Spawn every worker, wait for announcements, start the monitor."""
        for handle in self._handles:
            self._spawn(handle)
        for handle in self._handles:
            if not handle.announced.wait(timeout=self._boot_timeout):
                tail = "\n".join(handle.stderr_tail)
                self.stop(drain_timeout=5.0)
                raise ServiceError(
                    f"shard {handle.spec.index} never announced within "
                    f"{self._boot_timeout:.0f}s; last stderr:\n{tail}"
                )
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="shard-supervisor", daemon=True
        )
        self._monitor.start()

    def stop(self, drain_timeout: float = 15.0) -> dict[str, Any]:
        """SIGTERM every worker (graceful drain), kill stragglers.

        Returns a JSON-ready summary (per-shard exit codes and restart
        counts) for the router's final metrics line.
        """
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=self._health_interval + 5.0)
        for handle in self._handles:
            process = handle.process
            if process is not None and process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + drain_timeout
        for handle in self._handles:
            process = handle.process
            if process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                handle.last_exit_code = process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                handle.last_exit_code = process.wait(timeout=10)
        return self.snapshot()

    # ------------------------------------------------------------------
    # the router's view
    # ------------------------------------------------------------------
    def url_of(self, shard_index: int) -> str | None:
        """The shard's current base URL, or ``None`` while it is down.

        The URL changes across restarts (workers bind ephemeral ports),
        so callers must re-ask per request rather than cache.  Failed
        (crash-loop breaker) and retired shards answer ``None`` too.
        """
        handle = self._handle_at(shard_index)
        if handle is None:
            return None
        with self._lock:
            if (
                handle.failed
                or handle.retired
                or handle.process is None
                or handle.process.poll() is not None
                or not handle.announced.is_set()
            ):
                return None
            return handle.url

    def pid_of(self, shard_index: int) -> int | None:
        """The worker's pid (chaos harnesses aim ``kill -9`` here)."""
        handle = self._handle_at(shard_index)
        process = handle.process if handle is not None else None
        return process.pid if process is not None else None

    def alive(self, shard_index: int) -> bool:
        """Whether the worker process is currently running."""
        handle = self._handle_at(shard_index)
        process = handle.process if handle is not None else None
        return process is not None and process.poll() is None

    def _handle_at(self, shard_index: int) -> _WorkerHandle | None:
        with self._lock:
            if 0 <= shard_index < len(self._handles):
                return self._handles[shard_index]
            return None

    def wait_for_ready(
        self, shard_index: int, timeout: float = 60.0
    ) -> bool:
        """Block until the shard answers ``/readyz`` 200 (or timeout)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            url = self.url_of(shard_index)
            if url is not None and self._probe(url):
                return True
            time.sleep(0.05)
        return False

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready supervisor state for ``/shards`` and metrics."""
        with self._lock:
            return {
                "shards": [
                    {
                        "shard": handle.spec.index,
                        "alive": (
                            handle.process is not None
                            and handle.process.poll() is None
                        ),
                        "url": handle.url if handle.announced.is_set() else None,
                        "pid": (
                            handle.process.pid
                            if handle.process is not None
                            else None
                        ),
                        "restarts": handle.restarts,
                        "last_exit_code": handle.last_exit_code,
                        "failed": handle.failed,
                        "retired": handle.retired,
                    }
                    for handle in self._handles
                ]
            }

    # ------------------------------------------------------------------
    # runtime topology changes (live rebalancing)
    # ------------------------------------------------------------------
    def add_worker(self, spec: ShardSpec) -> None:
        """Spawn one more shard worker while the fleet is serving.

        The new spec's index must be the next tail index — consistent
        hashing only ever grows/shrinks the ring at the tail, and tail-
        only mutation keeps ``url_of(i)`` positional lookups stable for
        every existing shard.  Blocks until the worker announces; on a
        boot failure the worker is killed and the fleet is unchanged.
        """
        with self._lock:
            expected = len(self._handles)
            if spec.index != expected:
                raise ServiceError(
                    f"add_worker expects tail index {expected}, "
                    f"got {spec.index}"
                )
            handle = _WorkerHandle(spec=spec)
            self._handles.append(handle)
        self._spawn(handle)
        if not handle.announced.wait(timeout=self._boot_timeout):
            tail = "\n".join(handle.stderr_tail)
            process = handle.process
            if process is not None and process.poll() is None:
                process.kill()
                process.wait(timeout=10)
            with self._lock:
                self._handles.remove(handle)
            raise ServiceError(
                f"new shard {spec.index} never announced within "
                f"{self._boot_timeout:.0f}s; last stderr:\n{tail}"
            )
        self._log(f"shard {spec.index} joined the fleet")

    def retire_worker(
        self, shard_index: int, drain_timeout: float = 15.0
    ) -> None:
        """Drain and remove the tail shard worker (shrink rebalance).

        Marks the handle retired first so the monitor neither probes nor
        resurrects it, SIGTERMs for a graceful drain, and escalates to
        ``kill -9`` past the timeout.  Tail-only, like :meth:`add_worker`.
        """
        with self._lock:
            if shard_index != len(self._handles) - 1:
                raise ServiceError(
                    f"retire_worker expects tail index "
                    f"{len(self._handles) - 1}, got {shard_index}"
                )
            if len(self._handles) == 1:
                raise ServiceError("refusing to retire the last shard")
            handle = self._handles[shard_index]
            handle.retired = True
        process = handle.process
        if process is not None and process.poll() is None:
            process.terminate()
            try:
                handle.last_exit_code = process.wait(timeout=drain_timeout)
            except subprocess.TimeoutExpired:
                process.kill()
                handle.last_exit_code = process.wait(timeout=10)
        with self._lock:
            if self._handles and self._handles[-1] is handle:
                self._handles.pop()
        self._log(f"shard {shard_index} retired")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _spawn(self, handle: _WorkerHandle) -> None:
        env = None
        if handle.spec.env is not None:
            import os

            env = {**os.environ, **handle.spec.env}
        with self._lock:
            handle.announced = threading.Event()
            handle.url = None
            handle.probe_failures = 0
            handle.process = subprocess.Popen(
                handle.spec.argv,
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
                text=True,
            )
        threading.Thread(
            target=self._drain_stderr,
            args=(handle, handle.process),
            name=f"shard-{handle.spec.index}-stderr",
            daemon=True,
        ).start()

    def _drain_stderr(
        self, handle: _WorkerHandle, process: subprocess.Popen
    ) -> None:
        """Read the worker's stderr forever: announcements + diagnostics.

        Draining also keeps the pipe from filling and blocking the
        worker.  The thread dies with the process (readline returns '').
        """
        stream = process.stderr
        if stream is None:  # pragma: no cover - PIPE is always set
            return
        for line in stream:
            handle.stderr_tail.append(line.rstrip("\n"))
            if ANNOUNCEMENT in line and not handle.announced.is_set():
                url = line.split(ANNOUNCEMENT, 1)[1].strip()
                with self._lock:
                    if handle.process is process:
                        handle.url = url
                handle.announced.set()
                # NOT "serving on": that prefix is the announcement
                # grammar, and harnesses parsing our *own* stderr must
                # only match the router's line
                self._log(
                    f"shard {handle.spec.index} ready at {url} "
                    f"(pid {process.pid})"
                )
        stream.close()

    def _probe(self, url: str) -> bool:
        """One ``GET /readyz``; any HTTP answer (even 503) counts as
        reachable — the probe hunts hung/dead workers, not drains."""
        try:
            with urllib.request.urlopen(
                url + "/readyz", timeout=self._probe_timeout
            ):
                return True
        except urllib.error.HTTPError:
            return True
        except (urllib.error.URLError, ConnectionError, OSError):
            return False

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(timeout=self._health_interval):
            # iterate a copy: add_worker/retire_worker mutate the list
            with self._lock:
                handles = list(self._handles)
            for handle in handles:
                if self._stopping.is_set():
                    return
                if handle.failed or handle.retired:
                    continue
                process = handle.process
                if process is None:
                    continue
                exit_code = process.poll()
                if exit_code is not None:
                    handle.last_exit_code = exit_code
                    self._restart(handle, f"exited rc={exit_code}")
                    continue
                if not handle.announced.is_set():
                    continue  # still booting; boot_timeout governed start
                url = handle.url
                if url is not None and not self._probe(url):
                    handle.probe_failures += 1
                    if (
                        handle.probe_failures
                        >= self._probe_failures_before_restart
                    ):
                        process.kill()
                        process.wait(timeout=10)
                        self._restart(
                            handle,
                            f"unresponsive ({handle.probe_failures} failed "
                            "readyz probes)",
                        )
                else:
                    handle.probe_failures = 0

    def _restart(self, handle: _WorkerHandle, reason: str) -> None:
        if self._stopping.is_set() or handle.retired:
            return
        handle.restarts += 1
        now = time.monotonic()
        while (
            handle.recent_restarts
            and now - handle.recent_restarts[0] > self._crash_loop_window
        ):
            handle.recent_restarts.popleft()
        handle.recent_restarts.append(now)
        rapid = len(handle.recent_restarts)
        if rapid >= self._crash_loop_threshold:
            handle.failed = True
            self._log(
                f"shard {handle.spec.index} crash-looping ({rapid} restarts "
                f"in {self._crash_loop_window:.0f}s); breaker tripped — "
                "marking failed and giving up"
            )
            return
        delay = self._next_backoff(rapid)
        self._log(
            f"shard {handle.spec.index} {reason}; restarting "
            f"(restart #{handle.restarts}, backoff {delay:.2f}s)"
        )
        if delay:
            if self._stopping.wait(timeout=delay):
                return
        self._spawn(handle)

    def _next_backoff(self, rapid_restarts: int) -> float:
        """Exponential delay for the ``k``-th rapid restart, with jitter.

        ``base * 2**(k-1)`` capped at the ceiling, then stretched by up
        to +50% from the seeded jitter PRNG so sibling shards that died
        together don't respawn in lockstep.
        """
        if not self._restart_backoff:
            return 0.0
        exponential = min(
            self._restart_backoff_cap,
            self._restart_backoff * (2 ** max(0, rapid_restarts - 1)),
        )
        return exponential * (1.0 + self._jitter.uniform(0.0, 0.5))


def build_worker_argv(
    shard_index: int,
    shard_count: int,
    base_args: Sequence[str],
    wal_dir: str | None = None,
    join_empty: bool = False,
) -> list[str]:
    """The exec line for one shard worker.

    ``base_args`` are the serve flags shared by every shard (cohort,
    classifier, durability policy...); the shard identity, an ephemeral
    port, and the per-shard WAL directory are appended here so they can
    never be forgotten or collide.  ``join_empty`` boots the worker with
    zero registered owners — the spawn mode of a shard joining a live
    rebalance, which receives its owners via slice import.
    """
    argv = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--port",
        "0",
        "--shard-index",
        str(shard_index),
        "--shard-count",
        str(shard_count),
        *base_args,
    ]
    if wal_dir is not None:
        argv += ["--wal-dir", wal_dir]
    if join_empty:
        argv.append("--join-empty")
    return argv


__all__ = [
    "ANNOUNCEMENT",
    "ShardSpec",
    "ShardSupervisor",
    "build_worker_argv",
]
