"""Failover-aware HTTP router in front of the shard workers.

:class:`ShardRouterServer` is the single address clients talk to.  It
holds no owner state and computes no scores: every ``/score``,
``/score-batch``, and ``/mutate`` is proxied to the shard worker that
owns the request's owners (per the shared
:class:`~repro.service.sharding.ShardMap`), and the answer — status
code, body, ``Retry-After`` — is relayed verbatim.  A requested risk
measure (``?measure=`` / the batch body's ``"measure"`` field) is
validated against the local registry (unknown names are a 400 with the
menu, without touching any shard) and forwarded to the owning shard;
``GET /measures`` is answered locally from the same registry.  Because
every shard registers its owners with their *global* cohort indices,
per-measure digests are byte-identical to the unsharded deployment.

Failure policy, built from :mod:`repro.resilience`:

* each shard gets its own :class:`~repro.resilience.CircuitBreaker`
  whose *failure* signal is connection-level unreachability only — any
  HTTP answer, even a 503, proves the worker is alive;
* idempotent reads (``/score``, batch stream opens) retry under a small
  seeded :class:`~repro.resilience.RetryPolicy`, riding out the
  supervisor's restart window;
* ``/mutate`` is sent exactly once — a mutation whose ack was lost must
  surface as an error, never be silently replayed;
* a shard that stays unreachable after retries costs its own owners a
  bounded ``503 Retry-After: 1`` while every other shard keeps serving.

Mutation routing: owner-addressed ops (``touch``, ``grant_labels``,
``add_user``) go to the owning shard; graph-wide ops
(``add_friendship``, ``remove_friendship``, ``update_profile``) are
broadcast to every shard, because each worker holds a full copy of the
graph and bumps only its own registered owners.  ``add_user``
additionally broadcasts the new profile to non-owning shards as an
``update_profile`` (a graph-only add there — the user belongs to no
remote universe yet).  A partial broadcast is answered 503 with the
applied/failed shard lists; the mutation was acknowledged only by the
shards listed as applied.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from ..errors import (
    CircuitOpenError,
    RetryExhaustedError,
    ShardUnavailableError,
)
from ..measures import measure_catalog
from ..resilience import CircuitBreaker, Deadline, RetryPolicy, retry_call
from .http import _INVALID_MEASURE, MeasureParsingMixin, ServiceState
from .sharding import ShardMap
from .supervisor import ShardSupervisor
from .wal import MUTATION_OPS

#: Ops addressed to a single owner (routed to that owner's shard).
OWNER_OPS = frozenset({"touch", "grant_labels", "add_user"})
#: Ops touching the shared graph (broadcast to every shard).
BROADCAST_OPS = frozenset(
    {"add_friendship", "remove_friendship", "update_profile"}
)

#: Bounded failover budget: ~3 attempts inside a couple hundred ms, so a
#: dead shard answers 503 quickly instead of hanging its callers.
DEFAULT_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.1, multiplier=2.0, max_delay=0.5, seed=2012
)


class _ShardRefusal(Exception):
    """A shard answered an HTTP error for a whole streamed batch."""

    def __init__(self, status: int, document: dict[str, Any]) -> None:
        super().__init__(document.get("error", f"shard answered {status}"))
        self.status = status
        self.document = document


class ShardClient:
    """Resilient HTTP client for one shard worker.

    Re-resolves the worker's URL through the supervisor on every attempt
    (restarted workers bind fresh ephemeral ports) and translates
    connection-level failures into :class:`ShardUnavailableError`, which
    the retry policy treats as transient and the breaker as a failure.
    """

    def __init__(
        self,
        supervisor: ShardSupervisor,
        shard_index: int,
        *,
        timeout: float = 60.0,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self._supervisor = supervisor
        self.shard_index = shard_index
        self._timeout = timeout
        self._retry_policy = retry_policy
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=3, recovery_time=1.0
        )

    # -- one attempt ---------------------------------------------------
    def _request(self, method: str, path: str, body: Any = None):
        url = self._supervisor.url_of(self.shard_index)
        if url is None:
            raise ShardUnavailableError(
                f"shard {self.shard_index} is down (restarting)",
                shard=self.shard_index,
            )
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url + path, data=data, headers=headers, method=method
        )
        try:
            return urllib.request.urlopen(request, timeout=self._timeout)
        except urllib.error.HTTPError as error:
            return error  # an HTTP answer: the shard is alive
        except (urllib.error.URLError, ConnectionError, OSError) as error:
            raise ShardUnavailableError(
                f"shard {self.shard_index} unreachable: {error}",
                shard=self.shard_index,
            ) from error

    def _attempt(
        self, method: str, path: str, body: Any = None
    ) -> tuple[int, dict[str, Any], int | None]:
        response = self._request(method, path, body)
        with response:
            status = response.status if hasattr(response, "status") else response.code
            retry_after = response.headers.get("Retry-After")
            raw = response.read()
        try:
            document = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            document = {"error": raw.decode("utf-8", "replace")[:200]}
        return (
            int(status),
            document,
            int(retry_after) if retry_after is not None else None,
        )

    # -- public surface ------------------------------------------------
    def call(
        self, method: str, path: str, body: Any = None, *, retries: bool = True
    ) -> tuple[int, dict[str, Any], int | None]:
        """Proxy one JSON request; returns ``(status, body, retry_after)``.

        ``retries=False`` is for mutations: exactly one attempt, so a
        lost ack is reported instead of silently replayed.
        """
        if not retries:
            self.breaker.before_call()
            try:
                result = self._attempt(method, path, body)
            except ShardUnavailableError:
                self.breaker.record_failure()
                raise
            self.breaker.record_success()
            return result
        return retry_call(
            lambda: self._attempt(method, path, body),
            self._retry_policy,
            retry_on=(ShardUnavailableError,),
            breaker=self.breaker,
        )

    def try_call(
        self, method: str, path: str, body: Any = None
    ) -> tuple[int, dict[str, Any], int | None] | None:
        """Best-effort single attempt; ``None`` if the shard is away.

        For aggregation endpoints (health, metrics, owners) where one
        dead shard must not fail the whole answer.
        """
        try:
            return self.call(method, path, body, retries=False)
        except (ShardUnavailableError, CircuitOpenError):
            return None

    def open_stream(self, path: str, body: Any):
        """Open an NDJSON response stream (retried like a read).

        Raises :class:`_ShardRefusal` when the shard answers a non-200
        (circuit open, draining): the caller turns that into per-owner
        error lines.
        """

        def attempt():
            response = self._request("POST", path, body)
            status = (
                response.status if hasattr(response, "status") else response.code
            )
            if int(status) != 200:
                with response:
                    raw = response.read()
                try:
                    document = json.loads(raw.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    document = {"error": f"shard answered {status}"}
                raise _ShardRefusal(int(status), document)
            return response

        return retry_call(
            attempt,
            self._retry_policy,
            retry_on=(ShardUnavailableError,),
            breaker=self.breaker,
        )


class ShardRouterServer(ThreadingHTTPServer):
    """Threaded router bound to one supervisor + shard map.

    The shard map and client list live together in one *topology* tuple
    swapped atomically at rebalance cutover; request handlers snapshot
    the topology once and use both halves from the same snapshot, so a
    mid-request resize can never pair an old map with a new client list.
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        shard_map: ShardMap,
        supervisor: ShardSupervisor,
        *,
        request_timeout: float = 60.0,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        quiet: bool = True,
        state: ServiceState | None = None,
    ) -> None:
        super().__init__(address, ShardRouterHandler)
        self.supervisor = supervisor
        self.request_timeout = request_timeout
        self.retry_policy = retry_policy
        self.quiet = quiet
        self.state = state or ServiceState()
        self._topology = (
            shard_map,
            [
                self._make_client(shard)
                for shard in range(shard_map.num_shards)
            ],
        )
        #: The live rebalance coordinator (wired by ``serve_sharded`` and
        #: tests); ``POST /shards`` answers 503 while this is ``None``.
        self.rebalance = None
        #: ``(frozenset(moving_owners), phase)`` while a migration is in
        #: flight, else ``None``.  Single-attribute read/write — atomic.
        self._fence: tuple[frozenset[int], str] | None = None
        self._counter_lock = threading.Lock()
        self.counters = {
            "score": 0,
            "score_batch": 0,
            "mutate": 0,
            "broadcasts": 0,
            "shard_unavailable": 0,
            "fenced": 0,
        }

    def _make_client(self, shard: int) -> ShardClient:
        return ShardClient(
            self.supervisor,
            shard,
            timeout=self.request_timeout + 5.0,
            retry_policy=self.retry_policy,
        )

    # -- topology ------------------------------------------------------
    @property
    def topology(self) -> tuple[ShardMap, list[ShardClient]]:
        """The current ``(shard_map, clients)`` pair; read it ONCE per
        request and use both halves from the same snapshot."""
        return self._topology

    @property
    def shard_map(self) -> ShardMap:
        """The current shard map (one half of :attr:`topology`)."""
        return self._topology[0]

    @property
    def clients(self) -> list[ShardClient]:
        """The current shard clients (other half of :attr:`topology`)."""
        return self._topology[1]

    def apply_topology(self, shard_map: ShardMap) -> None:
        """Atomically swap in a resized topology (rebalance cutover).

        Surviving shards keep their existing :class:`ShardClient` — and
        with it their circuit-breaker history; new tail shards get fresh
        clients; clients past the new count are dropped.
        """
        old_clients = self._topology[1]
        clients = [
            old_clients[shard]
            if shard < len(old_clients)
            else self._make_client(shard)
            for shard in range(shard_map.num_shards)
        ]
        self._topology = (shard_map, clients)

    # -- migration fence -----------------------------------------------
    def set_fence(self, owners, phase: str) -> None:
        """Fence the moving owners (and graph broadcasts) for migration."""
        self._fence = (frozenset(int(owner) for owner in owners), phase)

    def clear_fence(self) -> None:
        """Lift the migration fence."""
        self._fence = None

    @property
    def fence(self) -> tuple[frozenset[int], str] | None:
        """The active fence, or ``None`` outside migrations."""
        return self._fence

    @property
    def url(self) -> str:
        """The router's base URL (useful with an ephemeral port)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def count(self, key: str, amount: int = 1) -> None:
        """Bump one router counter (thread-safe)."""
        with self._counter_lock:
            self.counters[key] += amount

    def counters_snapshot(self) -> dict[str, int]:
        """A consistent copy of the router counters."""
        with self._counter_lock:
            return dict(self.counters)


class ShardRouterHandler(MeasureParsingMixin, BaseHTTPRequestHandler):
    """Routes requests to shard workers; never computes a score."""

    # HTTP/1.1 so clients reuse connections (responses always carry a
    # Content-Length or close explicitly, e.g. /score-batch streams)
    protocol_version = "HTTP/1.1"

    server: ShardRouterServer

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Route GET requests to aggregation endpoints and /score."""
        parsed = urlparse(self.path)
        if parsed.path == "/healthz":
            self._respond(200, self._health_document())
        elif parsed.path == "/readyz":
            self._readyz()
        elif parsed.path == "/shards":
            self._respond(200, self._shards_document())
        elif parsed.path == "/metrics":
            self._respond(200, self._metrics_document())
        elif parsed.path == "/owners":
            self._owners()
        elif parsed.path == "/measures":
            # Answered locally: the router imports the same registry the
            # shard workers do, so no fan-out is needed.
            self._respond(200, {"measures": measure_catalog()})
        elif parsed.path == "/score":
            if self._reject_while_draining():
                return
            query = parse_qs(parsed.query)
            owner_id = self._owner_from_query(query)
            if owner_id is None:
                return
            measure = self._measure_from_values(query.get("measure"))
            if measure is not _INVALID_MEASURE:
                self._score(owner_id, measure)
        else:
            self._respond(404, {"error": f"unknown path {parsed.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Route POST /score, /score-batch, and /mutate."""
        parsed = urlparse(self.path)
        if parsed.path == "/score":
            if self._reject_while_draining():
                return
            body = self._json_body()
            if body is None:
                return
            owner_id = self._owner_from_body(body)
            if owner_id is None:
                return
            measure = self._measure_from_body(body)
            if measure is not _INVALID_MEASURE:
                self._score(owner_id, measure)
        elif parsed.path == "/score-batch":
            if self._reject_while_draining():
                return
            self._score_batch()
        elif parsed.path == "/mutate":
            if self._reject_while_draining():
                return
            self._mutate()
        elif parsed.path == "/shards":
            self._shards_admin()
        else:
            self._respond(404, {"error": f"unknown path {parsed.path!r}"})

    # ------------------------------------------------------------------
    # rebalance admin
    # ------------------------------------------------------------------
    def _shards_admin(self) -> None:
        """``POST /shards``: grow/shrink the fleet, or steer a migration.

        * ``{"count": M}`` — start a live rebalance to ``M`` shards
          (``"pause_before": "<phase>"`` holds the state machine at a
          phase boundary for inspection or chaos drills);
        * ``{"resume": true}`` — release a paused migration;
        * ``{"abort": true}`` — request a rollback (pre-cutover only).
        """
        body = self._json_body()
        if body is None:
            return
        coordinator = self.server.rebalance
        if coordinator is None:
            self._respond(
                503,
                {"error": "no rebalance coordinator wired to this router"},
            )
            return
        from ..errors import RebalanceError

        try:
            if body.get("resume"):
                coordinator.resume()
            elif body.get("abort"):
                coordinator.abort()
            elif "count" in body:
                count = body["count"]
                if not isinstance(count, int) or isinstance(count, bool):
                    self._respond(
                        400, {"error": f"invalid shard count {count!r}"}
                    )
                    return
                coordinator.begin(
                    count, pause_before=body.get("pause_before")
                )
            else:
                self._respond(
                    400,
                    {
                        "error": (
                            'body must be {"count": <n>}, {"resume": true}, '
                            'or {"abort": true}'
                        )
                    },
                )
                return
        except RebalanceError as error:
            self._respond(409, {"error": str(error), "phase": error.phase})
            return
        self._respond(202, {"ok": True, "rebalance": coordinator.status()})

    # ------------------------------------------------------------------
    # aggregation endpoints
    # ------------------------------------------------------------------
    def _health_document(self) -> dict[str, Any]:
        shards = []
        for client in self.server.clients:
            answer = client.try_call("GET", "/healthz")
            if answer is None:
                shards.append(
                    {"shard": client.shard_index, "status": "unreachable"}
                )
            else:
                _, document, _ = answer
                shards.append({"shard": client.shard_index, **document})
        return {
            "status": "ok",
            "role": "router",
            "draining": self.server.state.draining,
            "map": self.server.shard_map.to_dict(),
            "supervisor": self.server.supervisor.snapshot(),
            "shards": shards,
        }

    def _readyz(self) -> None:
        """Ready iff the router is serving and every shard is ready."""
        state = self.server.state
        per_shard = []
        all_ready = state.ready and not state.draining
        for client in self.server.clients:
            answer = client.try_call("GET", "/readyz")
            if answer is None:
                per_shard.append(
                    {"shard": client.shard_index, "ready": False,
                     "detail": "unreachable"}
                )
                all_ready = False
            else:
                status, document, _ = answer
                ready = status == 200
                per_shard.append(
                    {"shard": client.shard_index, "ready": ready,
                     "detail": document.get("detail", "")}
                )
                all_ready = all_ready and ready
        self._respond(
            200 if all_ready else 503,
            {
                "ready": all_ready,
                "draining": state.draining,
                "detail": state.detail,
                "shards": per_shard,
            },
        )

    def _shards_document(self) -> dict[str, Any]:
        shard_map, clients = self.server.topology
        document = {
            "map": shard_map.to_dict(),
            "num_shards": shard_map.num_shards,
            "supervisor": self.server.supervisor.snapshot(),
            "breakers": [
                {"shard": client.shard_index, **client.breaker.snapshot()}
                for client in clients
            ],
        }
        coordinator = self.server.rebalance
        if coordinator is not None:
            document["rebalance"] = coordinator.status()
        fence = self.server.fence
        if fence is not None:
            owners, phase = fence
            document["fence"] = {
                "owners": sorted(owners),
                "phase": phase,
            }
        return document

    def _metrics_document(self) -> dict[str, Any]:
        shards = []
        for client in self.server.clients:
            answer = client.try_call("GET", "/metrics")
            shards.append(
                {"shard": client.shard_index, "unreachable": True}
                if answer is None
                else {"shard": client.shard_index, **answer[1]}
            )
        # fleet-wide coalescing rollup, forwarded from each worker's
        # scheduler block: how many /score hits were absorbed by an
        # already-in-flight identical request, per shard and in total
        per_shard: dict[str, int] = {}
        for entry in shards:
            scheduler = entry.get("scheduler")
            if isinstance(scheduler, dict) and "coalesced_hits" in scheduler:
                per_shard[str(entry["shard"])] = int(
                    scheduler["coalesced_hits"]
                )
        return {
            "router": self.server.counters_snapshot(),
            "supervisor": self.server.supervisor.snapshot(),
            "coalescing": {
                "coalesced_hits": sum(per_shard.values()),
                "per_shard": per_shard,
            },
            "shards": shards,
        }

    def _owners(self) -> None:
        owners: list[dict[str, Any]] = []
        unreachable: list[int] = []
        for client in self.server.clients:
            answer = client.try_call("GET", "/owners")
            if answer is None:
                unreachable.append(client.shard_index)
                continue
            _, document, _ = answer
            for entry in document.get("owners", []):
                owners.append({**entry, "shard": client.shard_index})
        owners.sort(key=lambda entry: entry.get("owner", 0))
        document = {"owners": owners}
        if unreachable:
            document["unreachable_shards"] = unreachable
        self._respond(200, document)

    # ------------------------------------------------------------------
    # proxied work
    # ------------------------------------------------------------------
    def _reject_while_draining(self) -> bool:
        if self.server.state.draining:
            self._respond(
                503, {"error": "router is draining"}, retry_after=1
            )
            return True
        return False

    def _fenced(self, owner_id: int) -> bool:
        """503 + Retry-After when ``owner_id`` is mid-migration.

        Reads are fenced too, not just writes: scoring grants labels as
        a by-product, and a grant landing on the source after its slice
        was exported would silently diverge from the destination.
        """
        fence = self.server.fence
        if fence is None or owner_id not in fence[0]:
            return False
        self.server.count("fenced")
        self._respond(
            503,
            {
                "error": (
                    f"owner {owner_id} is migrating between shards; "
                    "retry shortly"
                ),
                "rebalance": fence[1],
            },
            retry_after=1,
        )
        return True

    def _score(self, owner_id: int, measure: str | None = None) -> None:
        self.server.count("score")
        if self._fenced(owner_id):
            return
        shard_map, clients = self.server.topology
        shard = shard_map.shard_of(owner_id)
        client = clients[shard]
        path = f"/score?owner={owner_id}"
        if measure is not None:
            path += f"&measure={measure}"
        try:
            status, document, retry_after = client.call("GET", path)
        except (ShardUnavailableError, RetryExhaustedError,
                CircuitOpenError) as error:
            self.server.count("shard_unavailable")
            self._respond(
                503,
                {"error": str(error), "shard": shard},
                retry_after=1,
            )
            return
        self._respond(status, document, retry_after=retry_after)

    def _score_batch(self) -> None:
        """Fan a batch out by owning shard, merge streams in order.

        Each shard streams its members' lines back in the order they
        were submitted; per-slot events let the response thread emit the
        merged stream in *request* order as soon as each line lands.  A
        shard dying mid-stream costs its remaining members 503 error
        lines; other shards' lines are unaffected.
        """
        body = self._json_body()
        if body is None:
            return
        owners = body.get("owners")
        if (
            not isinstance(owners, list)
            or not owners
            or not all(isinstance(o, int) and not isinstance(o, bool)
                       for o in owners)
        ):
            self._respond(
                400,
                {"error": 'body must be JSON like {"owners": [<id>, ...]}'},
            )
            return
        measure = self._measure_from_body(body)
        if measure is _INVALID_MEASURE:
            return
        self.server.count("score_batch")
        shard_map, clients = self.server.topology
        fence = self.server.fence
        fenced_owners = fence[0] if fence is not None else frozenset()
        groups: dict[int, list[tuple[int, int]]] = {}
        slots: list[dict[str, Any] | None] = [None] * len(owners)
        arrived = [threading.Event() for _ in owners]
        for position, owner_id in enumerate(owners):
            if owner_id in fenced_owners:
                # mid-migration owners get a bounded per-line 503 instead
                # of racing the slice export on either shard
                self.server.count("fenced")
                slots[position] = {
                    "owner": owner_id,
                    "error": (
                        f"owner {owner_id} is migrating between shards; "
                        "retry shortly"
                    ),
                    "status": 503,
                    "retry_after": 1,
                }
                arrived[position].set()
                continue
            shard = shard_map.shard_of(owner_id)
            groups.setdefault(shard, []).append((position, owner_id))

        def fail_members(members, status, message, shard):
            for position, owner_id in members:
                if not arrived[position].is_set():
                    slots[position] = {
                        "owner": owner_id,
                        "error": message,
                        "status": status,
                        "shard": shard,
                    }
                    arrived[position].set()

        # live shard-reader streams, so teardown can force-close them and
        # unblock any reader still parked in readline()
        streams_lock = threading.Lock()
        open_streams: list[Any] = []

        def pump(shard: int, members: list[tuple[int, int]]) -> None:
            client = clients[shard]
            shard_body: dict[str, Any] = {
                "owners": [o for _, o in members]
            }
            if measure is not None:
                shard_body["measure"] = measure
            try:
                stream = client.open_stream("/score-batch", shard_body)
            except _ShardRefusal as refusal:
                fail_members(
                    members,
                    refusal.status,
                    refusal.document.get("error", "shard refused the batch"),
                    shard,
                )
                return
            except (ShardUnavailableError, RetryExhaustedError,
                    CircuitOpenError) as error:
                self.server.count("shard_unavailable")
                fail_members(members, 503, str(error), shard)
                return
            with streams_lock:
                open_streams.append(stream)
            try:
                with stream:
                    for position, owner_id in members:
                        raw = stream.readline()
                        if not raw:
                            raise ShardUnavailableError(
                                f"shard {shard} stream ended early",
                                shard=shard,
                            )
                        slots[position] = json.loads(raw.decode("utf-8"))
                        arrived[position].set()
            except Exception as error:
                self.server.count("shard_unavailable")
                fail_members(
                    members, 503, f"stream from shard {shard} died: {error}",
                    shard,
                )
            finally:
                with streams_lock:
                    if stream in open_streams:
                        open_streams.remove(stream)

        pumps = [
            threading.Thread(
                target=pump,
                args=(shard, members),
                name=f"batch-pump-shard-{shard}",
                daemon=True,
            )
            for shard, members in groups.items()
        ]
        for thread in pumps:
            thread.start()
        deadline = Deadline(self.server.request_timeout)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        for position, owner_id in enumerate(owners):
            if not arrived[position].wait(timeout=deadline.remaining()):
                line: dict[str, Any] = {
                    "owner": owner_id,
                    "error": (
                        f"batch exceeded the "
                        f"{self.server.request_timeout:.1f}s budget"
                    ),
                    "status": 504,
                }
            else:
                line = slots[position] or {
                    "owner": owner_id,
                    "error": "internal: empty slot",
                    "status": 500,
                }
            self.wfile.write(json.dumps(line).encode("utf-8") + b"\n")
            self.wfile.flush()
        # Reliable teardown: a reader parked in readline() on a slow
        # shard would outlive a timed-out join and leak across requests.
        # Closing its stream forces readline() to return/raise, so every
        # pump provably exits before the handler does.
        with streams_lock:
            stranded = list(open_streams)
        for stream in stranded:
            try:
                stream.close()
            except Exception:  # pragma: no cover - close is best-effort
                pass
        for thread in pumps:
            thread.join(timeout=10.0)

    def _mutate(self) -> None:
        body = self._json_body()
        if body is None:
            return
        op = body.get("op")
        if op not in MUTATION_OPS:
            self._respond(
                400,
                {"error": f"unknown op {op!r}", "ops": list(MUTATION_OPS)},
            )
            return
        self.server.count("mutate")
        try:
            if op in OWNER_OPS:
                self._mutate_owner_addressed(op, body)
            else:
                self._mutate_broadcast(op, body)
        except (KeyError, TypeError, ValueError) as error:
            self._respond(
                400, {"error": f"malformed arguments for {op!r}: {error}"}
            )

    def _mutate_owner_addressed(self, op: str, body: dict[str, Any]) -> None:
        """Route a single-owner mutation to its owning shard (one try)."""
        owner_id = int(body["owner"])
        if self._fenced(owner_id):
            return
        if op == "add_user" and self._fence_blocks_broadcast(op):
            # add_user fans the profile out to every shard's graph copy,
            # so it is a broadcast in disguise
            return
        shard_map, clients = self.server.topology
        shard = shard_map.shard_of(owner_id)
        client = clients[shard]
        try:
            status, document, retry_after = client.call(
                "POST", "/mutate", body, retries=False
            )
        except (ShardUnavailableError, CircuitOpenError) as error:
            self.server.count("shard_unavailable")
            self._respond(
                503,
                {"error": str(error), "shard": shard},
                retry_after=1,
            )
            return
        if op == "add_user" and status == 200:
            # make the new user visible in every shard's graph copy: a
            # graph-only add on non-owning shards (the user belongs to no
            # universe there, so nobody's version is bumped)
            others = [
                client_ for client_ in clients
                if client_.shard_index != shard
            ]
            failed = self._broadcast_to(
                others, {"op": "update_profile", "profile": body["profile"]}
            )[1]
            if failed:
                self._respond(
                    503,
                    {
                        "error": (
                            "add_user acknowledged by the owning shard but "
                            "the profile broadcast failed; retry to "
                            "reconverge"
                        ),
                        "op": op,
                        "applied": [shard],
                        "failed": failed,
                    },
                    retry_after=1,
                )
                return
        self._respond(status, {**document, "shard": shard},
                      retry_after=retry_after)

    def _broadcast_to(
        self, clients: list[ShardClient], body: dict[str, Any]
    ) -> tuple[dict[int, dict[str, Any]], list[int]]:
        """POST one mutation to many shards concurrently.

        Returns ``(answers_by_shard, failed_shards)`` where a failure is
        an unreachable shard or a non-200 answer.
        """
        answers: dict[int, dict[str, Any]] = {}
        failed: list[int] = []
        lock = threading.Lock()

        def send(client: ShardClient) -> None:
            try:
                status, document, _ = client.call(
                    "POST", "/mutate", body, retries=False
                )
            except (ShardUnavailableError, CircuitOpenError) as error:
                with lock:
                    failed.append(client.shard_index)
                    answers[client.shard_index] = {"error": str(error)}
                return
            with lock:
                answers[client.shard_index] = document
                if status != 200:
                    failed.append(client.shard_index)

        threads = [
            threading.Thread(target=send, args=(client,), daemon=True)
            for client in clients
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return answers, sorted(failed)

    def _fence_blocks_broadcast(self, op: str) -> bool:
        """503 graph-wide mutations while a migration is in flight.

        A joining shard's graph copy is frozen at export time; letting a
        broadcast land on the old shards mid-transfer would hand the new
        shard a stale graph at cutover.  Bounded: the fence only spans
        export → cutover.
        """
        fence = self.server.fence
        if fence is None:
            return False
        self.server.count("fenced")
        self._respond(
            503,
            {
                "error": (
                    f"graph mutation {op!r} deferred: a shard rebalance "
                    "is migrating owners; retry shortly"
                ),
                "rebalance": fence[1],
            },
            retry_after=1,
        )
        return True

    def _mutate_broadcast(self, op: str, body: dict[str, Any]) -> None:
        """Apply a graph-wide mutation on every shard; merge the acks."""
        if self._fence_blocks_broadcast(op):
            return
        self.server.count("broadcasts")
        answers, failed = self._broadcast_to(self.server.clients, body)
        if failed:
            self.server.count("shard_unavailable")
            applied = sorted(
                shard for shard, answer in answers.items()
                if shard not in failed and answer.get("ok")
            )
            self._respond(
                503,
                {
                    "error": (
                        f"broadcast {op!r} failed on shard(s) {failed}; "
                        "applied shards listed — retry to reconverge"
                    ),
                    "op": op,
                    "applied": applied,
                    "failed": failed,
                    "answers": {str(s): a for s, a in answers.items()},
                },
                retry_after=1,
            )
            return
        affected = sorted(
            {
                owner
                for answer in answers.values()
                for owner in answer.get("affected", [])
            }
        )
        versions: dict[str, int] = {}
        for answer in answers.values():
            versions.update(answer.get("versions", {}))
        self._respond(
            200,
            {
                "ok": True,
                "op": op,
                "affected": affected,
                "versions": versions,
                "shards": {
                    str(shard): answer.get("seq")
                    for shard, answer in answers.items()
                },
            },
        )

    # ------------------------------------------------------------------
    # request parsing + plumbing (same wire conventions as the worker)
    # ------------------------------------------------------------------
    def _owner_from_query(self, query: dict[str, list[str]]) -> int | None:
        values = query.get("owner")
        if not values:
            self._respond(400, {"error": "missing ?owner=<id>"})
            return None
        try:
            return int(values[0])
        except ValueError:
            self._respond(400, {"error": f"invalid owner id {values[0]!r}"})
            return None

    def _json_body(self) -> dict[str, Any] | None:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._respond(400, {"error": "body must be a JSON object"})
            return None
        if not isinstance(body, dict):
            self._respond(400, {"error": "body must be a JSON object"})
            return None
        return body

    def _owner_from_body(self, body: dict[str, Any]) -> int | None:
        if "owner" not in body:
            self._respond(
                400, {"error": 'body must be JSON like {"owner": <id>}'}
            )
            return None
        try:
            return int(body["owner"])
        except (ValueError, TypeError):
            self._respond(
                400, {"error": f"invalid owner id {body['owner']!r}"}
            )
            return None

    def _respond(
        self,
        status: int,
        document: dict[str, Any],
        retry_after: int | None = None,
    ) -> None:
        payload = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Suppress access logs unless the router is verbose."""
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)


def build_router(
    shard_map: ShardMap,
    supervisor: ShardSupervisor,
    host: str = "127.0.0.1",
    port: int = 0,
    request_timeout: float = 60.0,
    retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    state: ServiceState | None = None,
) -> ShardRouterServer:
    """Wire shard map + supervisor → router (port 0 = ephemeral)."""
    return ShardRouterServer(
        (host, port),
        shard_map,
        supervisor,
        request_timeout=request_timeout,
        retry_policy=retry_policy,
        state=state,
    )


__all__ = [
    "BROADCAST_OPS",
    "DEFAULT_RETRY_POLICY",
    "OWNER_OPS",
    "ShardClient",
    "ShardRouterHandler",
    "ShardRouterServer",
    "build_router",
]
