"""Confusion analysis for risk-label predictions.

The paper stresses that prediction errors are *asymmetric* (Section
III-C): "Higher label prediction poses no immediate threat to privacy; it
only calls for more vigilance.  On the other hand, lower prediction can
have the system assume that the owner is safe when there is a real
privacy threat."

:class:`ConfusionMatrix` therefore reports, besides the usual per-class
counts, the **under-prediction rate** — the fraction of dangerous errors
— separately from the benign over-predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..types import RiskLabel


@dataclass
class ConfusionMatrix:
    """A 3x3 confusion matrix over the risk-label scale.

    ``counts[(predicted, actual)]`` holds raw pair counts; rows/columns
    are the integer label values 1..3.
    """

    counts: dict[tuple[int, int], int] = field(default_factory=dict)

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[RiskLabel | int, RiskLabel | int]]
    ) -> "ConfusionMatrix":
        """Build from ``(predicted, actual)`` pairs."""
        matrix = cls()
        for predicted, actual in pairs:
            matrix.add(RiskLabel(int(predicted)), RiskLabel(int(actual)))
        return matrix

    @classmethod
    def from_labelings(
        cls,
        predicted: Mapping[int, RiskLabel],
        actual: Mapping[int, RiskLabel],
    ) -> "ConfusionMatrix":
        """Build from two labelings, over their common keys."""
        matrix = cls()
        for key in predicted.keys() & actual.keys():
            matrix.add(predicted[key], actual[key])
        return matrix

    def add(self, predicted: RiskLabel, actual: RiskLabel) -> None:
        """Count one prediction."""
        key = (int(predicted), int(actual))
        self.counts[key] = self.counts.get(key, 0) + 1

    def count(self, predicted: RiskLabel, actual: RiskLabel) -> int:
        """Pairs with the given predicted/actual combination."""
        return self.counts.get((int(predicted), int(actual)), 0)

    @property
    def total(self) -> int:
        """Number of counted pairs."""
        return sum(self.counts.values())

    @property
    def accuracy(self) -> float:
        """Exact-match fraction (0 on an empty matrix)."""
        if self.total == 0:
            return 0.0
        correct = sum(
            count
            for (predicted, actual), count in self.counts.items()
            if predicted == actual
        )
        return correct / self.total

    @property
    def underprediction_rate(self) -> float:
        """Fraction of pairs predicted *less* risky than the owner says.

        These are the paper's dangerous errors — the system declares a
        stranger safer than they are.
        """
        if self.total == 0:
            return 0.0
        dangerous = sum(
            count
            for (predicted, actual), count in self.counts.items()
            if predicted < actual
        )
        return dangerous / self.total

    @property
    def overprediction_rate(self) -> float:
        """Fraction of pairs predicted *more* risky than the owner says.

        Benign errors: they only "call for more vigilance"."""
        if self.total == 0:
            return 0.0
        benign = sum(
            count
            for (predicted, actual), count in self.counts.items()
            if predicted > actual
        )
        return benign / self.total

    def recall(self, label: RiskLabel) -> float:
        """Fraction of actual ``label`` strangers predicted as such."""
        actual_total = sum(
            count
            for (_, actual), count in self.counts.items()
            if actual == int(label)
        )
        if actual_total == 0:
            return 0.0
        return self.count(label, label) / actual_total

    def precision(self, label: RiskLabel) -> float:
        """Fraction of ``label`` predictions that were correct."""
        predicted_total = sum(
            count
            for (predicted, _), count in self.counts.items()
            if predicted == int(label)
        )
        if predicted_total == 0:
            return 0.0
        return self.count(label, label) / predicted_total

    def render(self) -> str:
        """A small text rendering (rows = predicted, columns = actual)."""
        header = "pred\\actual  " + "  ".join(
            f"{value:>5}" for value in RiskLabel.values()
        )
        lines = [header]
        for predicted in RiskLabel:
            row = [f"{int(predicted):>11}"]
            for actual in RiskLabel:
                row.append(f"{self.count(predicted, actual):>5}")
            lines.append("  ".join(row))
        lines.append(
            f"accuracy {self.accuracy:.1%}  "
            f"under-prediction (dangerous) {self.underprediction_rate:.1%}  "
            f"over-prediction (benign) {self.overprediction_rate:.1%}"
        )
        return "\n".join(lines)
