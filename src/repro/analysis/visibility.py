"""Visibility cross-tabs: Tables IV and V.

Both tables report, per benefit item, the fraction of stranger profiles
whose item is visible to a friend-of-friend — broken down by stranger
gender (Table IV) and stranger locale (Table V).  The functions here
*measure* those fractions from profiles; the synthetic generator plants
them, and the benchmarks verify the round trip.
"""

from __future__ import annotations

from typing import Iterable

from ..graph.profile import Profile
from ..graph.visibility import STRANGER_DISTANCE
from ..types import BenefitItem, Gender, Locale, ProfileAttribute


def _visibility_rates(
    profiles: list[Profile],
) -> dict[BenefitItem, float]:
    if not profiles:
        return {item: 0.0 for item in BenefitItem}
    rates = {}
    for item in BenefitItem:
        visible = sum(
            1 for profile in profiles if profile.is_visible(item, STRANGER_DISTANCE)
        )
        rates[item] = visible / len(profiles)
    return rates


def visibility_by_gender(
    profiles: Iterable[Profile],
) -> dict[Gender, dict[BenefitItem, float]]:
    """Table IV: per-item visibility split by stranger gender.

    Profiles without a gender are excluded (as in the paper's "available
    profiles" statistics).
    """
    buckets: dict[Gender, list[Profile]] = {gender: [] for gender in Gender}
    for profile in profiles:
        value = profile.attribute(ProfileAttribute.GENDER)
        if value is None:
            continue
        try:
            buckets[Gender(value)].append(profile)
        except ValueError:
            continue
    return {
        gender: _visibility_rates(bucket) for gender, bucket in buckets.items()
    }


def visibility_by_locale(
    profiles: Iterable[Profile],
    locales: tuple[Locale, ...] = Locale.table5_locales(),
) -> dict[Locale, dict[BenefitItem, float]]:
    """Table V: per-item visibility split by stranger locale."""
    buckets: dict[Locale, list[Profile]] = {locale: [] for locale in locales}
    for profile in profiles:
        value = profile.attribute(ProfileAttribute.LOCALE)
        if value is None:
            continue
        try:
            locale = Locale(value)
        except ValueError:
            continue
        if locale in buckets:
            buckets[locale].append(profile)
    return {
        locale: _visibility_rates(bucket) for locale, bucket in buckets.items()
    }
