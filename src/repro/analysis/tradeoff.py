"""The similarity/benefit trade-off behind the owner question.

Section II frames the risk judgment as a tension between homophily
(similar strangers feel safer) and heterophily (dissimilar strangers
offer benefits).  This module quantifies how a label assignment resolves
that tension: strangers are split into quadrants by their NS and B values
(relative to the population medians), and each quadrant's label mix is
reported.

Expected shape under the planted attitudes (and, per the paper's
discussion, under real owners): the high-similarity quadrants are safest;
within a similarity band, more visible (higher-benefit) strangers skew
slightly safer.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Mapping

from ..types import RiskLabel, UserId

#: Quadrant keys: (similarity side, benefit side).
QUADRANTS = (
    ("low_similarity", "low_benefit"),
    ("low_similarity", "high_benefit"),
    ("high_similarity", "low_benefit"),
    ("high_similarity", "high_benefit"),
)


@dataclass(frozen=True)
class QuadrantStats:
    """Label statistics of one similarity/benefit quadrant."""

    similarity_side: str
    benefit_side: str
    count: int
    label_counts: dict[RiskLabel, int]

    @property
    def mean_label(self) -> float:
        """Average numeric label (1 = safest, 3 = riskiest); 0 if empty."""
        if self.count == 0:
            return 0.0
        return (
            sum(int(label) * count for label, count in self.label_counts.items())
            / self.count
        )

    @property
    def very_risky_share(self) -> float:
        """Fraction labeled very risky; 0 if empty."""
        if self.count == 0:
            return 0.0
        return self.label_counts[RiskLabel.VERY_RISKY] / self.count


def tradeoff_quadrants(
    labels: Mapping[UserId, RiskLabel],
    similarities: Mapping[UserId, float],
    benefits: Mapping[UserId, float],
) -> dict[tuple[str, str], QuadrantStats]:
    """Split labeled strangers into NS/B quadrants (median splits).

    Strangers missing from either metric map are skipped.  Returns every
    quadrant (possibly with count 0) keyed by
    ``(similarity_side, benefit_side)``.
    """
    rows = [
        (stranger, similarities[stranger], benefits[stranger], label)
        for stranger, label in labels.items()
        if stranger in similarities and stranger in benefits
    ]
    if rows:
        similarity_cut = statistics.median(row[1] for row in rows)
        benefit_cut = statistics.median(row[2] for row in rows)
    else:
        similarity_cut = benefit_cut = 0.0

    counts: dict[tuple[str, str], dict[RiskLabel, int]] = {
        quadrant: {label: 0 for label in RiskLabel} for quadrant in QUADRANTS
    }
    for _, similarity, benefit, label in rows:
        similarity_side = (
            "high_similarity" if similarity > similarity_cut else "low_similarity"
        )
        benefit_side = "high_benefit" if benefit > benefit_cut else "low_benefit"
        counts[(similarity_side, benefit_side)][label] += 1

    return {
        quadrant: QuadrantStats(
            similarity_side=quadrant[0],
            benefit_side=quadrant[1],
            count=sum(label_counts.values()),
            label_counts=label_counts,
        )
        for quadrant, label_counts in counts.items()
    }


def homophily_gap(
    quadrants: Mapping[tuple[str, str], QuadrantStats],
) -> float:
    """Mean-label gap between low- and high-similarity strangers.

    Positive values mean low-similarity strangers are judged riskier —
    the homophily signature Figure 7 shows per group.
    """
    low = [
        stats
        for (similarity_side, _), stats in quadrants.items()
        if similarity_side == "low_similarity" and stats.count
    ]
    high = [
        stats
        for (similarity_side, _), stats in quadrants.items()
        if similarity_side == "high_similarity" and stats.count
    ]
    if not low or not high:
        return 0.0
    low_mean = sum(s.mean_label * s.count for s in low) / sum(s.count for s in low)
    high_mean = sum(s.mean_label * s.count for s in high) / sum(
        s.count for s in high
    )
    return low_mean - high_mean


def render_tradeoff(
    quadrants: Mapping[tuple[str, str], QuadrantStats],
) -> str:
    """A small text table of the quadrant statistics."""
    lines = [
        "Similarity/benefit trade-off (median splits)",
        f"{'quadrant':<36}{'n':>6}  {'mean label':>10}  {'very risky':>10}",
    ]
    for quadrant in QUADRANTS:
        stats = quadrants[quadrant]
        name = f"{stats.similarity_side} / {stats.benefit_side}"
        lines.append(
            f"{name:<36}{stats.count:>6}  {stats.mean_label:>10.2f}  "
            f"{stats.very_risky_share:>10.1%}"
        )
    return "\n".join(lines)
