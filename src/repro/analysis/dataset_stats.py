"""Dataset characterization (the Section IV-A statistics).

The paper introduces its dataset with a handful of aggregates: owner
count and demographics, total stranger profiles, total labels, and the
per-owner averages.  This module computes the same characterization for
any :class:`~repro.synth.population.StudyPopulation`, so generated
datasets can be documented the way the paper documents its crawl.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..graph.metrics import degree_statistics
from ..synth.population import StudyPopulation
from ..types import Gender, Locale, ProfileAttribute, RiskLabel


@dataclass(frozen=True)
class DatasetStatistics:
    """Aggregates in the shape of Section IV-A."""

    num_owners: int
    owners_by_gender: dict[Gender, int]
    owners_by_locale: dict[Locale, int]
    total_strangers: int
    mean_strangers_per_owner: float
    stranger_gender_counts: dict[Gender, int]
    stranger_locale_counts: dict[Locale, int]
    label_counts: dict[RiskLabel, int]
    num_users: int
    num_friendships: int
    mean_degree: float


def dataset_statistics(population: StudyPopulation) -> DatasetStatistics:
    """Characterize a generated cohort."""
    owners_by_gender = Counter(owner.gender for owner in population.owners)
    owners_by_locale = Counter(owner.locale for owner in population.owners)

    stranger_genders: Counter = Counter()
    stranger_locales: Counter = Counter()
    label_counts: Counter = Counter()
    total_strangers = 0
    for owner in population.owners:
        for stranger in population.strangers_of(owner.user_id):
            total_strangers += 1
            profile = population.graph.profile(stranger)
            gender_value = profile.attribute(ProfileAttribute.GENDER)
            if gender_value is not None:
                try:
                    stranger_genders[Gender(gender_value)] += 1
                except ValueError:
                    pass
            locale_value = profile.attribute(ProfileAttribute.LOCALE)
            if locale_value is not None:
                try:
                    stranger_locales[Locale(locale_value)] += 1
                except ValueError:
                    pass
        for label in owner.ground_truth.values():
            label_counts[label] += 1

    degrees = degree_statistics(population.graph)
    return DatasetStatistics(
        num_owners=len(population.owners),
        owners_by_gender={gender: owners_by_gender.get(gender, 0) for gender in Gender},
        owners_by_locale=dict(owners_by_locale),
        total_strangers=total_strangers,
        mean_strangers_per_owner=(
            total_strangers / len(population.owners)
            if population.owners
            else 0.0
        ),
        stranger_gender_counts={
            gender: stranger_genders.get(gender, 0) for gender in Gender
        },
        stranger_locale_counts=dict(stranger_locales),
        label_counts={label: label_counts.get(label, 0) for label in RiskLabel},
        num_users=degrees.num_users,
        num_friendships=degrees.num_friendships,
        mean_degree=degrees.mean_degree,
    )


def render_dataset_statistics(stats: DatasetStatistics) -> str:
    """Paper-style text block for a dataset (cf. Section IV-A)."""
    gender_line = ", ".join(
        f"{count} {gender.value}"
        for gender, count in stats.owners_by_gender.items()
    )
    locale_line = ", ".join(
        f"{count} {locale.value}"
        for locale, count in sorted(
            stats.owners_by_locale.items(), key=lambda pair: -pair[1]
        )
    )
    label_total = sum(stats.label_counts.values()) or 1
    label_line = ", ".join(
        f"{label.name.lower().replace('_', ' ')} "
        f"{count / label_total:.0%}"
        for label, count in stats.label_counts.items()
    )
    return "\n".join(
        [
            "Dataset characterization (cf. Section IV-A)",
            f"  owners: {stats.num_owners} ({gender_line})",
            f"  owner locales: {locale_line}",
            f"  stranger profiles: {stats.total_strangers} "
            f"({stats.mean_strangers_per_owner:.0f} per owner)",
            f"  graph: {stats.num_users} users, "
            f"{stats.num_friendships} friendships "
            f"(mean degree {stats.mean_degree:.1f})",
            f"  ground-truth label mix: {label_line}",
        ]
    )
