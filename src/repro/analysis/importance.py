"""Attribute and benefit-item importance (Definition 6, Tables I and II).

For one owner, the importance of a profile attribute is its information
gain ratio against the owner's risk labels, normalized across attributes:

``I_pai = IGR(pai) / sum_j IGR(paj)``

Table I aggregates this per-owner quantity two ways: the average
importance, and how often each attribute ranks first/second/third across
owners.  Table II applies the identical definition to benefit items, with
the attribute value replaced by the item's visibility bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..graph.profile import Profile
from ..types import BenefitItem, ProfileAttribute, RiskLabel, UserId
from .entropy import information_gain_ratio


@dataclass(frozen=True)
class ImportanceRanking:
    """One owner's normalized importances, with ranking helpers."""

    importances: Mapping[str, float]

    def ranked(self) -> list[tuple[str, float]]:
        """Keys sorted by importance, descending (ties by name)."""
        return sorted(
            self.importances.items(), key=lambda pair: (-pair[1], pair[0])
        )

    def rank_of(self, key: str) -> int:
        """1-based rank of ``key`` (1 = most important)."""
        order = [name for name, _ in self.ranked()]
        return order.index(key) + 1


def attribute_importance(
    profiles: Mapping[UserId, Profile],
    labels: Mapping[UserId, RiskLabel],
    attributes: Sequence[ProfileAttribute] = ProfileAttribute.clustering_attributes(),
) -> ImportanceRanking:
    """Definition 6 over one owner's labeled strangers.

    Strangers missing a given attribute are excluded from that attribute's
    IGR computation (the paper computed statistics "on those available
    user profiles").
    """
    ratios: dict[str, float] = {}
    for attribute in attributes:
        values = []
        attribute_labels = []
        for stranger, label in labels.items():
            profile = profiles.get(stranger)
            if profile is None:
                continue
            value = profile.attribute(attribute)
            if value is None:
                continue
            values.append(value)
            attribute_labels.append(int(label))
        ratios[attribute.value] = information_gain_ratio(values, attribute_labels)
    return ImportanceRanking(importances=_normalize(ratios))


def benefit_importance(
    visibility: Mapping[UserId, Mapping[BenefitItem, bool]],
    labels: Mapping[UserId, RiskLabel],
    items: Sequence[BenefitItem] = BenefitItem.all_items(),
) -> ImportanceRanking:
    """Table II's mined benefit importance.

    "Whereas in similarity we have categorical item values such as
    gender:male, in benefits we work with visibility values such as
    photos:1" — so the attribute value fed to the IGR is the boolean
    visibility bit of each item.
    """
    ratios: dict[str, float] = {}
    for item in items:
        values = []
        item_labels = []
        for stranger, label in labels.items():
            bits = visibility.get(stranger)
            if bits is None:
                continue
            values.append(bool(bits.get(item, False)))
            item_labels.append(int(label))
        ratios[item.value] = information_gain_ratio(values, item_labels)
    return ImportanceRanking(importances=_normalize(ratios))


def rank_counts(
    rankings: Sequence[ImportanceRanking],
) -> dict[str, dict[int, int]]:
    """Aggregate per-owner rankings into Table I/II shape.

    Returns ``{key: {rank: owner_count}}`` — e.g. Table I's "gender is the
    most important item (I1) for 34 owners".
    """
    counts: dict[str, dict[int, int]] = {}
    for ranking in rankings:
        for rank, (key, _) in enumerate(ranking.ranked(), start=1):
            counts.setdefault(key, {})[rank] = (
                counts.setdefault(key, {}).get(rank, 0) + 1
            )
    return counts


def average_importance(
    rankings: Sequence[ImportanceRanking],
) -> dict[str, float]:
    """Mean normalized importance per key across owners."""
    if not rankings:
        return {}
    totals: dict[str, float] = {}
    for ranking in rankings:
        for key, value in ranking.importances.items():
            totals[key] = totals.get(key, 0.0) + value
    return {key: total / len(rankings) for key, total in totals.items()}


def _normalize(ratios: Mapping[str, float]) -> dict[str, float]:
    total = sum(ratios.values())
    if total <= 0:
        uniform = 1.0 / len(ratios) if ratios else 0.0
        return {key: uniform for key in ratios}
    return {key: value / total for key, value in ratios.items()}
