"""Label composition per network similarity group (Figure 7).

Figure 7 of the paper shows that "with increasing network similarity, the
percentage of very risky labels in network similarity groups consistently
decreases" — the homophily signature.  These helpers compute that series
from any label assignment (owner ground truth or pipeline output).
"""

from __future__ import annotations

from typing import Mapping

from ..clustering.nsg import NetworkSimilarityGroup
from ..types import RiskLabel, UserId


def label_fractions_by_group(
    groups: list[NetworkSimilarityGroup],
    labels: Mapping[UserId, RiskLabel],
) -> dict[int, dict[RiskLabel, float]]:
    """Per-group label mix, keyed by group index.

    Groups with no labeled members are omitted.  Members missing from
    ``labels`` are skipped (e.g. strangers outside the labeled prefix).
    """
    result: dict[int, dict[RiskLabel, float]] = {}
    for group in groups:
        counts = {label: 0 for label in RiskLabel}
        total = 0
        for member in group.members:
            label = labels.get(member)
            if label is None:
                continue
            counts[label] += 1
            total += 1
        if total == 0:
            continue
        result[group.index] = {
            label: count / total for label, count in counts.items()
        }
    return result


def very_risky_fraction_by_group(
    groups: list[NetworkSimilarityGroup],
    labels: Mapping[UserId, RiskLabel],
) -> dict[int, float]:
    """The Figure 7 series: fraction of *very risky* labels per group."""
    fractions = label_fractions_by_group(groups, labels)
    return {
        index: mix[RiskLabel.VERY_RISKY] for index, mix in fractions.items()
    }
