"""Analysis of risk labels: the machinery behind Tables I-V and Figure 7.

* :mod:`~repro.analysis.entropy` — entropy, information gain, information
  gain ratio;
* :mod:`~repro.analysis.importance` — Definition 6 attribute importance
  and its benefit-item variant (Tables I and II);
* :mod:`~repro.analysis.visibility` — visibility cross-tabs by gender and
  locale (Tables IV and V);
* :mod:`~repro.analysis.label_stats` — label composition per network
  similarity group (Figure 7).
"""

from .confusion import ConfusionMatrix
from .dataset_stats import (
    DatasetStatistics,
    dataset_statistics,
    render_dataset_statistics,
)
from .entropy import entropy, information_gain, information_gain_ratio
from .importance import (
    ImportanceRanking,
    attribute_importance,
    average_importance,
    benefit_importance,
    rank_counts,
)
from .label_stats import label_fractions_by_group, very_risky_fraction_by_group
from .tradeoff import (
    QuadrantStats,
    homophily_gap,
    render_tradeoff,
    tradeoff_quadrants,
)
from .visibility import visibility_by_gender, visibility_by_locale

__all__ = [
    "ConfusionMatrix",
    "DatasetStatistics",
    "ImportanceRanking",
    "dataset_statistics",
    "render_dataset_statistics",
    "attribute_importance",
    "average_importance",
    "benefit_importance",
    "QuadrantStats",
    "entropy",
    "homophily_gap",
    "information_gain",
    "information_gain_ratio",
    "label_fractions_by_group",
    "rank_counts",
    "render_tradeoff",
    "tradeoff_quadrants",
    "very_risky_fraction_by_group",
    "visibility_by_gender",
    "visibility_by_locale",
]
