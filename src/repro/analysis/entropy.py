"""Entropy, information gain, and information gain ratio.

The paper uses information gain ratio (MacKay 2003, ref [20]) "to capture
the importance of a variable": a profile attribute whose values sharply
reduce the entropy of the owner's risk-label distribution carries more of
the owner's decision rationale.

All functions operate on plain sequences of hashable values, so they serve
both profile attributes (categorical strings) and benefit visibilities
(booleans).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Sequence


def entropy(values: Sequence[Hashable]) -> float:
    """Shannon entropy (bits) of the empirical distribution of ``values``.

    An empty sequence has zero entropy by convention.
    """
    total = len(values)
    if total == 0:
        return 0.0
    counts = Counter(values)
    result = 0.0
    for count in counts.values():
        probability = count / total
        result -= probability * math.log2(probability)
    return result


def information_gain(
    attribute_values: Sequence[Hashable],
    labels: Sequence[Hashable],
) -> float:
    """Reduction of label entropy achieved by splitting on the attribute.

    ``IG = H(L) - sum_v p(v) * H(L | v)``.
    """
    if len(attribute_values) != len(labels):
        raise ValueError(
            f"attribute_values ({len(attribute_values)}) and labels "
            f"({len(labels)}) must have equal length"
        )
    base = entropy(labels)
    total = len(labels)
    if total == 0:
        return 0.0
    by_value: dict[Hashable, list[Hashable]] = {}
    for value, label in zip(attribute_values, labels):
        by_value.setdefault(value, []).append(label)
    conditional = sum(
        (len(group) / total) * entropy(group) for group in by_value.values()
    )
    return base - conditional


def split_information(attribute_values: Sequence[Hashable]) -> float:
    """The intrinsic value of the split: ``H`` of the attribute itself."""
    return entropy(attribute_values)


def information_gain_ratio(
    attribute_values: Sequence[Hashable],
    labels: Sequence[Hashable],
) -> float:
    """``IGR = IG / split_information`` (0 when the split is degenerate).

    A single-valued attribute has zero split information and carries no
    decision signal, so its ratio is defined as 0 rather than dividing by
    zero.
    """
    split = split_information(attribute_values)
    if split == 0.0:
        return 0.0
    gain = information_gain(attribute_values, labels)
    # floating noise can push an effectively-zero gain slightly negative
    return max(0.0, gain) / split
