"""Anonymization of social-graph datasets before sharing.

A paper about privacy risk should not itself leak identities when its
datasets are exported.  :func:`anonymize_graph` produces a shareable copy
of a graph:

* user ids are replaced by salted-hash pseudonyms (stable within one
  export, unlinkable across exports with different salts);
* direct identifiers (last name) are dropped;
* quasi-identifiers can be kept (they drive the algorithms) or dropped
  via ``keep_attributes``;
* privacy settings are preserved — they are the object of study.

This is deliberately *pseudonymization plus attribute suppression*, not a
formal guarantee: graph structure itself can re-identify users (the
de-anonymization literature the paper's related work touches).  The
docstring of the module is explicit about that limit so downstream users
do not over-trust the export.
"""

from __future__ import annotations

import hashlib

from ..errors import SerializationError
from ..graph.profile import Profile
from ..graph.social_graph import SocialGraph
from ..types import ProfileAttribute, UserId

#: Attributes kept by default: the quasi-identifiers the pipeline's
#: measures actually consume.  Last name — a direct identifier — is out.
DEFAULT_KEPT_ATTRIBUTES: tuple[ProfileAttribute, ...] = (
    ProfileAttribute.GENDER,
    ProfileAttribute.LOCALE,
    ProfileAttribute.HOMETOWN,
    ProfileAttribute.EDUCATION,
    ProfileAttribute.WORK,
    ProfileAttribute.LOCATION,
)


def pseudonym(user_id: UserId, salt: str) -> int:
    """Stable salted pseudonym for a user id (63-bit int)."""
    digest = hashlib.sha256(f"{salt}:{user_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def anonymize_graph(
    graph: SocialGraph,
    salt: str,
    keep_attributes: tuple[ProfileAttribute, ...] = DEFAULT_KEPT_ATTRIBUTES,
) -> tuple[SocialGraph, dict[UserId, int]]:
    """Produce an anonymized copy of ``graph``.

    Parameters
    ----------
    graph:
        The source graph (unchanged).
    salt:
        Secret salt for the pseudonym hash.  An empty salt is rejected —
        unsalted hashes of small integer ids are trivially reversible.
    keep_attributes:
        Attributes to retain on the anonymized profiles.

    Returns
    -------
    (anonymized_graph, mapping)
        The new graph and the original-id → pseudonym mapping (keep the
        mapping private; it is returned so the data owner can join
        results back).
    """
    if not salt:
        raise SerializationError("anonymization requires a non-empty salt")
    mapping: dict[UserId, int] = {}
    for user_id in graph.users():
        alias = pseudonym(user_id, salt)
        if alias in mapping.values():  # pragma: no cover - 2^-63 event
            raise SerializationError("pseudonym collision; change the salt")
        mapping[user_id] = alias

    anonymized = SocialGraph()
    kept = set(keep_attributes) - {ProfileAttribute.LAST_NAME}
    for user_id in graph.users():
        source = graph.profile(user_id)
        anonymized.add_user(
            Profile(
                user_id=mapping[user_id],
                attributes={
                    attribute: value
                    for attribute, value in source.attributes.items()
                    if attribute in kept
                },
                privacy=dict(source.privacy),
            )
        )
    for a, b in graph.edges():
        anonymized.add_friendship(mapping[a], mapping[b])
    return anonymized, mapping
