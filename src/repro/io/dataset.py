"""Serialization of full study populations (datasets).

A serialized population captures everything needed to re-run the
experiments bit-for-bit on another machine *without* regenerating: the
graph, each owner's profile/attitude/thetas/confidence, the ground-truth
labels, and the ego-net handles.  This is the repository's substitute for
publishing the (unpublishable) Facebook dataset: a reproducible synthetic
one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..benefits.model import ThetaWeights
from ..errors import SerializationError
from ..graph.social_graph import SocialGraph
from ..synth.graphs import EgoNetConfig, EgoNetHandle
from ..synth.owners import RiskAttitude, SimulatedOwner
from ..synth.population import StudyConfig, StudyPopulation
from ..types import BenefitItem, Gender, Locale, RiskLabel
from .serialization import graph_from_json, graph_to_json, profile_from_dict, profile_to_dict

_FORMAT_VERSION = 1


def _attitude_to_dict(attitude: RiskAttitude) -> dict[str, Any]:
    return {
        "owner_locale": attitude.owner_locale.value,
        "risky_gender": attitude.risky_gender.value,
        "network_weight": attitude.network_weight,
        "gender_weight": attitude.gender_weight,
        "locale_weight": attitude.locale_weight,
        "lastname_weight": attitude.lastname_weight,
        "familiar_lastnames": sorted(attitude.familiar_lastnames),
        "item_sensitivities": {
            item.value: value
            for item, value in sorted(attitude.item_sensitivities.items())
        },
        "noise_sd": attitude.noise_sd,
        "threshold_risky": attitude.threshold_risky,
        "threshold_very_risky": attitude.threshold_very_risky,
    }


def _attitude_from_dict(document: dict[str, Any]) -> RiskAttitude:
    try:
        return RiskAttitude(
            owner_locale=Locale(document["owner_locale"]),
            risky_gender=Gender(document["risky_gender"]),
            network_weight=float(document["network_weight"]),
            gender_weight=float(document["gender_weight"]),
            locale_weight=float(document["locale_weight"]),
            lastname_weight=float(document["lastname_weight"]),
            familiar_lastnames=frozenset(document["familiar_lastnames"]),
            item_sensitivities={
                BenefitItem(name): float(value)
                for name, value in document["item_sensitivities"].items()
            },
            noise_sd=float(document["noise_sd"]),
            threshold_risky=float(document["threshold_risky"]),
            threshold_very_risky=float(document["threshold_very_risky"]),
        )
    except (KeyError, ValueError) as error:
        raise SerializationError(f"malformed attitude document: {error}") from error


def _owner_to_dict(owner: SimulatedOwner) -> dict[str, Any]:
    return {
        "user_id": owner.user_id,
        "profile": profile_to_dict(owner.profile),
        "attitude": _attitude_to_dict(owner.attitude),
        "thetas": {
            item.value: weight
            for item, weight in sorted(owner.thetas.weights.items())
        },
        "confidence": owner.confidence,
        "ground_truth": {
            str(stranger): int(label)
            for stranger, label in sorted(owner.ground_truth.items())
        },
    }


def _owner_from_dict(document: dict[str, Any]) -> SimulatedOwner:
    try:
        return SimulatedOwner(
            user_id=int(document["user_id"]),
            profile=profile_from_dict(document["profile"]),
            attitude=_attitude_from_dict(document["attitude"]),
            thetas=ThetaWeights(
                {
                    BenefitItem(name): float(weight)
                    for name, weight in document["thetas"].items()
                }
            ),
            confidence=float(document["confidence"]),
            ground_truth={
                int(stranger): RiskLabel(int(label))
                for stranger, label in document["ground_truth"].items()
            },
        )
    except (KeyError, ValueError) as error:
        raise SerializationError(f"malformed owner document: {error}") from error


def owner_to_dict(owner: SimulatedOwner) -> dict[str, Any]:
    """Serialize one simulated owner with full fidelity.

    Public entry point used by the service WAL snapshots; the dataset
    format embeds the same document per owner.
    """
    return _owner_to_dict(owner)


def owner_from_dict(document: dict[str, Any]) -> SimulatedOwner:
    """Rebuild an owner; inverse of :func:`owner_to_dict`."""
    return _owner_from_dict(document)


def _handle_to_dict(handle: EgoNetHandle) -> dict[str, Any]:
    return {
        "owner": handle.owner,
        "friends": list(handle.friends),
        "strangers": list(handle.strangers),
        "communities": [list(members) for members in handle.communities],
    }


def _handle_from_dict(document: dict[str, Any]) -> EgoNetHandle:
    try:
        return EgoNetHandle(
            owner=int(document["owner"]),
            friends=tuple(int(friend) for friend in document["friends"]),
            strangers=tuple(int(s) for s in document["strangers"]),
            communities=tuple(
                tuple(int(member) for member in members)
                for members in document["communities"]
            ),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise SerializationError(f"malformed handle document: {error}") from error


def population_to_json(population: StudyPopulation) -> str:
    """Serialize a full study population to a JSON string."""
    document = {
        "version": _FORMAT_VERSION,
        "graph": json.loads(graph_to_json(population.graph)),
        "owners": [_owner_to_dict(owner) for owner in population.owners],
        "handles": [
            _handle_to_dict(handle)
            for handle in population.handles.values()
        ],
        "config": {
            "num_owners": population.config.num_owners,
            "seed": population.config.seed,
            "topology": population.config.topology,
            "archetype": population.config.archetype,
            "ego": {
                "num_friends": population.config.ego.num_friends,
                "num_strangers": population.config.ego.num_strangers,
                "num_communities": population.config.ego.num_communities,
                "friend_density": population.config.ego.friend_density,
                "owner_locale_affinity": population.config.ego.owner_locale_affinity,
                "stranger_stranger_density": population.config.ego.stranger_stranger_density,
            },
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)


def population_from_json(text: str) -> StudyPopulation:
    """Deserialize a population written by :func:`population_to_json`."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}") from error
    if document.get("version") != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported dataset format version: {document.get('version')!r}"
        )
    graph: SocialGraph = graph_from_json(json.dumps(document["graph"]))
    owners = tuple(
        _owner_from_dict(entry) for entry in document.get("owners", [])
    )
    handles = {
        handle.owner: handle
        for handle in (
            _handle_from_dict(entry) for entry in document.get("handles", [])
        )
    }
    config_doc = document.get("config", {})
    ego_doc = config_doc.get("ego", {})
    config = StudyConfig(
        num_owners=int(config_doc.get("num_owners", len(owners))),
        ego=EgoNetConfig(**ego_doc) if ego_doc else EgoNetConfig(),
        seed=int(config_doc.get("seed", 0)),
        topology=config_doc.get("topology", "communities"),
        archetype=config_doc.get("archetype", "balanced"),
    )
    return StudyPopulation(
        graph=graph, owners=owners, handles=handles, config=config
    )


def save_population(population: StudyPopulation, path: str | Path) -> None:
    """Write a population dataset to ``path``."""
    Path(path).write_text(population_to_json(population), encoding="utf-8")


def load_population(path: str | Path) -> StudyPopulation:
    """Read a dataset written by :func:`save_population`."""
    return population_from_json(Path(path).read_text(encoding="utf-8"))
