"""One-way export of study results for logging and comparison.

A study export captures the headline metrics plus a per-owner summary —
enough to diff two runs (different seeds, configs, branches) without
re-running anything.  Exports are plain JSON documents.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..experiments.headline import headline_metrics
from ..experiments.study import StudyResult
from .serialization import session_result_to_dict


def study_result_to_dict(study: StudyResult) -> dict[str, Any]:
    """Serialize a study to a JSON-ready dict."""
    metrics = headline_metrics(study)
    return {
        "pooling": study.pooling,
        "classifier": study.classifier,
        "headline": {
            "num_owners": metrics.num_owners,
            "total_strangers": metrics.total_strangers,
            "total_labels": metrics.total_labels,
            "mean_labels_per_owner": metrics.mean_labels_per_owner,
            "exact_match_accuracy": metrics.exact_match_accuracy,
            "validation_rmse": metrics.validation_rmse,
            "holdout_accuracy": metrics.holdout_accuracy,
            "mean_rounds_to_stop": metrics.mean_rounds_to_stop,
            "mean_confidence": metrics.mean_confidence,
        },
        "owners": [
            {
                "owner": run.owner.user_id,
                "gender": run.owner.gender.value,
                "locale": run.owner.locale.value,
                "confidence": run.owner.confidence,
                "holdout_accuracy": run.holdout_accuracy,
                "session": session_result_to_dict(run.result),
            }
            for run in study.runs
        ],
    }


def save_study(study: StudyResult, path: str | Path) -> None:
    """Write a study export to ``path`` as JSON."""
    Path(path).write_text(
        json.dumps(study_result_to_dict(study), indent=2, sort_keys=True),
        encoding="utf-8",
    )
