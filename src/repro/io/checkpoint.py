"""Checkpoint/resume for long-running risk studies.

The paper's deployment ran for two months; a crash on day 40 must not
lose 40 days of owner labels.  The checkpoint layer persists per-pool
learning state as a study progresses:

* :func:`pool_result_to_dict` / :func:`pool_result_from_dict` — *full
  fidelity* round-trips of :class:`~repro.learning.results.PoolResult`
  (unlike the one-way logging export in
  :mod:`repro.io.serialization`, every round, score, and flag survives);
* :class:`CheckpointStore` — atomic JSON documents in a directory, one
  per key (``<key>.json``, written via temp-file + rename);
* :class:`SessionCheckpointer` — records each completed pool together
  with the session RNG state (and any extra stateful collaborator, e.g. a
  :class:`~repro.faults.FaultInjector`), so a killed session resumes from
  the last completed pool and replays the remainder byte-for-byte.

File format (version 1)::

    {
      "version": 1,
      "key": "owner-7",
      "rng_state": [version, [int, ...], gauss_next],
      "extra_state": {...} | null,
      "pools": [<pool document>, ...]
    }
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from ..errors import CheckpointError
from ..learning.results import PoolResult, RoundRecord
from ..learning.stopping import StopReason
from ..types import RiskLabel

_FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# full-fidelity result round-trips
# ---------------------------------------------------------------------------
def _labels_to_dict(labels) -> dict[str, int]:
    return {str(user): int(label) for user, label in sorted(labels.items())}


def _labels_from_dict(document: dict[str, int]) -> dict[int, RiskLabel]:
    return {
        int(user): RiskLabel(int(label)) for user, label in document.items()
    }


def round_record_to_dict(record: RoundRecord) -> dict[str, Any]:
    """Serialize one round with everything needed to rebuild it."""
    return {
        "round_index": record.round_index,
        "queried": list(record.queried),
        "answers": _labels_to_dict(record.answers),
        "validation_pairs": [list(pair) for pair in record.validation_pairs],
        "rmse": record.rmse,
        "predicted_scores": {
            str(user): score
            for user, score in sorted(record.predicted_scores.items())
        },
        "predicted_labels": _labels_to_dict(record.predicted_labels),
        "unstabilized": sorted(record.unstabilized),
        "stabilized": record.stabilized,
        "abstained": list(record.abstained),
    }


def round_record_from_dict(document: dict[str, Any]) -> RoundRecord:
    """Rebuild one round; inverse of :func:`round_record_to_dict`."""
    try:
        return RoundRecord(
            round_index=int(document["round_index"]),
            queried=tuple(int(user) for user in document["queried"]),
            answers=_labels_from_dict(document["answers"]),
            validation_pairs=tuple(
                (int(a), int(b)) for a, b in document["validation_pairs"]
            ),
            rmse=document["rmse"],
            predicted_scores={
                int(user): float(score)
                for user, score in document["predicted_scores"].items()
            },
            predicted_labels=_labels_from_dict(document["predicted_labels"]),
            unstabilized=frozenset(
                int(user) for user in document["unstabilized"]
            ),
            stabilized=bool(document["stabilized"]),
            abstained=tuple(int(user) for user in document.get("abstained", [])),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(
            f"malformed round record: {error}"
        ) from error


def pool_result_to_dict(result: PoolResult) -> dict[str, Any]:
    """Serialize a pool result with full fidelity."""
    return {
        "pool_id": result.pool_id,
        "nsg_index": result.nsg_index,
        "rounds": [round_record_to_dict(record) for record in result.rounds],
        "owner_labels": _labels_to_dict(result.owner_labels),
        "predicted_labels": _labels_to_dict(result.predicted_labels),
        "stop_reason": result.stop_reason.value,
        "unreachable": sorted(result.unreachable),
        "profile_coverage": result.profile_coverage,
    }


def pool_result_from_dict(document: dict[str, Any]) -> PoolResult:
    """Rebuild a pool result; inverse of :func:`pool_result_to_dict`."""
    try:
        return PoolResult(
            pool_id=str(document["pool_id"]),
            nsg_index=int(document["nsg_index"]),
            rounds=tuple(
                round_record_from_dict(entry) for entry in document["rounds"]
            ),
            owner_labels=_labels_from_dict(document["owner_labels"]),
            predicted_labels=_labels_from_dict(document["predicted_labels"]),
            stop_reason=StopReason(document["stop_reason"]),
            unreachable=frozenset(
                int(user) for user in document.get("unreachable", [])
            ),
            profile_coverage=document.get("profile_coverage"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(f"malformed pool result: {error}") from error


def rng_state_to_json(state: tuple) -> list[Any]:
    """``random.Random.getstate()`` as a JSON-ready value."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def rng_state_from_json(document: list[Any]) -> tuple:
    """Inverse of :func:`rng_state_to_json`."""
    try:
        version, internal, gauss_next = document
        return (version, tuple(internal), gauss_next)
    except (TypeError, ValueError) as error:
        raise CheckpointError(f"malformed RNG state: {error}") from error


# ---------------------------------------------------------------------------
# storage
# ---------------------------------------------------------------------------
def fsync_directory(directory: str | Path) -> None:
    """Flush a directory's entry table to disk (best-effort off POSIX).

    Needed after ``os.replace`` for machine-crash durability; platforms
    whose directories cannot be opened or fsync'd (e.g. Windows) simply
    skip the call.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX platforms
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystems without dir fsync
        pass
    finally:
        os.close(fd)


class CheckpointStore:
    """A directory of atomically-written JSON checkpoint documents.

    Writes go to a temp file in the same directory followed by
    ``os.replace``, so a crash mid-write leaves the previous checkpoint
    intact rather than a torn file.
    """

    def __init__(self, directory: str | Path) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path:
        """Where the checkpoints live."""
        return self._directory

    def path(self, key: str) -> Path:
        """The file backing ``key``."""
        return self._directory / f"{key}.json"

    def save(self, key: str, document: dict[str, Any]) -> None:
        """Atomically and durably persist ``document`` under ``key``.

        The temp file is fsync'd before the rename and the directory is
        fsync'd after it, so the checkpoint survives a machine crash
        (power loss), not just a process crash: without the first fsync
        the rename can land before the data blocks do, and without the
        second the directory entry itself may be lost.
        """
        target = self.path(key)
        temp = target.with_suffix(".json.tmp")
        payload = json.dumps(document, indent=2, sort_keys=True)
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, target)
        fsync_directory(self._directory)

    def load(self, key: str) -> dict[str, Any] | None:
        """The document under ``key``, or ``None`` when absent."""
        target = self.path(key)
        if not target.exists():
            return None
        try:
            return json.loads(target.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"corrupt checkpoint {target}: {error}"
            ) from error

    def discard(self, key: str) -> None:
        """Delete ``key``'s checkpoint, if any."""
        target = self.path(key)
        if target.exists():
            target.unlink()

    def keys(self) -> list[str]:
        """Every checkpoint key present, sorted."""
        return sorted(path.stem for path in self._directory.glob("*.json"))


# ---------------------------------------------------------------------------
# session-level checkpointing
# ---------------------------------------------------------------------------
class SessionCheckpointer:
    """Persists one session's per-pool progress into a store.

    Parameters
    ----------
    store:
        Backing store.
    key:
        Document key — one per session (``run_study`` uses
        ``owner-<id>``).
    extra_state:
        Optional collaborator with ``state() -> dict`` and
        ``restore(dict)`` whose randomness also advances during learning
        (a :class:`~repro.faults.FaultInjector`); its stream is captured
        alongside the session RNG so resumed runs replay the same faults.
    """

    def __init__(self, store: CheckpointStore, key: str, extra_state=None) -> None:
        self._store = store
        self._key = key
        self._extra_state = extra_state
        self._pool_documents: list[dict[str, Any]] = []

    @property
    def key(self) -> str:
        """This session's checkpoint key."""
        return self._key

    def reset(self) -> None:
        """Discard any previous checkpoint (fresh, non-resumed run)."""
        self._pool_documents = []
        self._store.discard(self._key)

    def load(self, rng) -> dict[str, PoolResult]:
        """Restore a checkpoint, if one exists.

        Rewinds ``rng`` (and the extra collaborator) to the state saved
        after the last completed pool, and returns the completed pools
        keyed by ``pool_id`` so the session can skip them.
        """
        document = self._store.load(self._key)
        if document is None:
            return {}
        if document.get("version") != _FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version: {document.get('version')!r}"
            )
        rng.setstate(rng_state_from_json(document["rng_state"]))
        if self._extra_state is not None and document.get("extra_state"):
            self._extra_state.restore(document["extra_state"])
        self._pool_documents = list(document["pools"])
        completed = {}
        for entry in self._pool_documents:
            result = pool_result_from_dict(entry)
            completed[result.pool_id] = result
        return completed

    def record(self, result: PoolResult, rng) -> None:
        """Persist one newly completed pool and the current RNG state."""
        self._pool_documents.append(pool_result_to_dict(result))
        document = {
            "version": _FORMAT_VERSION,
            "key": self._key,
            "rng_state": rng_state_to_json(rng.getstate()),
            "extra_state": (
                self._extra_state.state()
                if self._extra_state is not None
                else None
            ),
            "pools": self._pool_documents,
        }
        self._store.save(self._key, document)


__all__ = [
    "CheckpointStore",
    "SessionCheckpointer",
    "fsync_directory",
    "pool_result_from_dict",
    "pool_result_to_dict",
    "rng_state_from_json",
    "rng_state_to_json",
    "round_record_from_dict",
    "round_record_to_dict",
]
