"""JSON round-trips for the library's value types.

The format is deliberately plain: a graph document carries a ``users``
list (id, attributes, privacy) and an ``edges`` list, so datasets can be
produced and consumed by other tools.  Results serialize one-way (to
dicts) for logging and EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from ..errors import SerializationError
from ..graph.profile import Profile
from ..graph.social_graph import SocialGraph
from ..learning.results import SessionResult
from ..types import BenefitItem, ProfileAttribute, VisibilityLevel

_FORMAT_VERSION = 1


def profile_to_dict(profile: Profile) -> dict[str, Any]:
    """Serialize one profile."""
    return {
        "id": profile.user_id,
        "attributes": {
            attribute.value: value
            for attribute, value in sorted(profile.attributes.items())
        },
        "privacy": {
            item.value: level.name
            for item, level in sorted(profile.privacy.items())
        },
    }


def profile_from_dict(document: dict[str, Any]) -> Profile:
    """Deserialize one profile.

    Raises
    ------
    SerializationError
        On unknown attribute names, benefit items, or visibility levels.
    """
    try:
        attributes = {
            ProfileAttribute(name): value
            for name, value in document.get("attributes", {}).items()
        }
        privacy = {
            BenefitItem(name): VisibilityLevel[level]
            for name, level in document.get("privacy", {}).items()
        }
        return Profile(
            user_id=int(document["id"]),
            attributes=attributes,
            privacy=privacy,
        )
    except (KeyError, ValueError) as error:
        raise SerializationError(f"malformed profile document: {error}") from error


def graph_to_json(graph: SocialGraph) -> str:
    """Serialize a social graph (profiles + edges) to a JSON string."""
    document = {
        "version": _FORMAT_VERSION,
        "users": [
            profile_to_dict(graph.profile(user_id))
            for user_id in sorted(graph.users())
        ],
        "edges": sorted(graph.edges()),
    }
    return json.dumps(document, indent=2, sort_keys=True)


def graph_from_json(text: str) -> SocialGraph:
    """Deserialize a social graph from a JSON string."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}") from error
    if document.get("version") != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported graph format version: {document.get('version')!r}"
        )
    profiles = [profile_from_dict(entry) for entry in document.get("users", [])]
    try:
        edges = [(int(a), int(b)) for a, b in document.get("edges", [])]
    except (TypeError, ValueError) as error:
        raise SerializationError(f"malformed edge list: {error}") from error
    return SocialGraph.from_edges(profiles, edges)


def save_graph(graph: SocialGraph, path: str | Path) -> None:
    """Write a graph to ``path`` as JSON."""
    Path(path).write_text(graph_to_json(graph), encoding="utf-8")


def load_graph(path: str | Path) -> SocialGraph:
    """Read a graph written by :func:`save_graph`."""
    return graph_from_json(Path(path).read_text(encoding="utf-8"))


def result_digest(result: SessionResult) -> str:
    """Canonical SHA-256 digest of a session result.

    Two results digest equal iff their exported documents are
    byte-identical — the check the serving layer uses to prove a cached
    or warm re-score still matches a batch study run.
    """
    document = session_result_to_dict(result)
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def session_result_to_dict(result: SessionResult) -> dict[str, Any]:
    """One-way export of a session result for logging."""
    return {
        "owner": result.owner,
        "confidence": result.confidence,
        "num_pools": result.num_pools,
        "num_strangers": result.num_strangers,
        "labels_requested": result.labels_requested,
        "exact_match_accuracy": result.exact_match_accuracy,
        "validation_rmse": result.validation_rmse,
        "mean_rounds_to_stop": result.mean_rounds_to_stop,
        "converged_fraction": result.converged_fraction,
        "pools": [
            {
                "pool_id": pool.pool_id,
                "nsg_index": pool.nsg_index,
                "rounds": pool.num_rounds,
                "labels_requested": pool.labels_requested,
                "stop_reason": pool.stop_reason.value,
                "final_labels": {
                    str(stranger): int(label)
                    for stranger, label in sorted(pool.final_labels.items())
                },
            }
            for pool in result.pool_results
        ],
    }
