"""Serialization of graphs, profiles, datasets, and results to JSON."""

from .anonymize import anonymize_graph, pseudonym
from .checkpoint import (
    CheckpointStore,
    SessionCheckpointer,
    pool_result_from_dict,
    pool_result_to_dict,
)
from .study_io import save_study, study_result_to_dict
from .dataset import (
    load_population,
    owner_from_dict,
    owner_to_dict,
    population_from_json,
    population_to_json,
    save_population,
)
from .serialization import (
    graph_from_json,
    graph_to_json,
    load_graph,
    profile_from_dict,
    profile_to_dict,
    result_digest,
    save_graph,
    session_result_to_dict,
)

__all__ = [
    "CheckpointStore",
    "SessionCheckpointer",
    "anonymize_graph",
    "graph_from_json",
    "pool_result_from_dict",
    "pool_result_to_dict",
    "graph_to_json",
    "load_graph",
    "load_population",
    "owner_from_dict",
    "owner_to_dict",
    "population_from_json",
    "population_to_json",
    "profile_from_dict",
    "pseudonym",
    "profile_to_dict",
    "result_digest",
    "save_graph",
    "save_population",
    "save_study",
    "session_result_to_dict",
    "study_result_to_dict",
]
