"""Social-graph substrate: profiles, the friendship graph, and ego views.

This package provides everything the risk pipeline needs from an OSN:

* :class:`~repro.graph.profile.Profile` — categorical attributes plus
  per-item privacy settings;
* :class:`~repro.graph.social_graph.SocialGraph` — an undirected friendship
  graph with profile storage and mutual-friend queries;
* :class:`~repro.graph.ego.EgoNetwork` — the owner-centric view that yields
  the *stranger* set (2-hop contacts, Section II of the paper);
* :mod:`~repro.graph.metrics` — structural helpers (densities, components);
* :mod:`~repro.graph.visibility` — resolution of the visibility bit
  ``V_s(i, o)`` from privacy settings and graph distance.
"""

from .ego import EgoNetwork
from .metrics import (
    degree_statistics,
    edge_count_within,
    induced_components,
    induced_density,
)
from .profile import Profile
from .social_graph import SocialGraph
from .visibility import item_visibility, visible_items

__all__ = [
    "EgoNetwork",
    "Profile",
    "SocialGraph",
    "degree_statistics",
    "edge_count_within",
    "induced_components",
    "induced_density",
    "item_visibility",
    "visible_items",
]
