"""The undirected friendship graph with attached profiles.

:class:`SocialGraph` is the substrate every other package builds on.  It is
a thin, fast adjacency-set structure rather than a networkx wrapper: the
pipeline's hot loops (mutual-friend queries during pool construction, 2-hop
expansion per owner) only need set intersections, and keeping storage
explicit makes serialization and property-based testing straightforward.
A :meth:`to_networkx` escape hatch exists for analysis and visualization.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

import networkx as nx

from ..errors import GraphError, UnknownUserError
from ..types import UserId
from .profile import Profile

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np
    import scipy.sparse


class AdjacencyIndex:
    """An immutable CSR snapshot of a graph's adjacency.

    The index fixes a canonical node order (graph insertion order) and
    exposes the 0/1 adjacency matrix in scipy CSR form with integer data,
    so batched mutual-friend counting stays exact.  Snapshots never track
    the live graph: :meth:`SocialGraph.adjacency_index` hands out a cached
    instance and drops it on any mutation, so a stale snapshot can only be
    reached through a reference taken before the mutation.
    """

    __slots__ = ("_nodes", "_positions", "_matrix")

    def __init__(self, adjacency: dict[UserId, set[UserId]]) -> None:
        import numpy as np
        import scipy.sparse as sparse

        nodes = tuple(adjacency)
        positions = {user_id: pos for pos, user_id in enumerate(nodes)}
        indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
        rows: list[np.ndarray] = []
        for position, user_id in enumerate(nodes):
            neighbor_positions = np.sort(
                np.fromiter(
                    (positions[n] for n in adjacency[user_id]),
                    dtype=np.int64,
                    count=len(adjacency[user_id]),
                )
            )
            rows.append(neighbor_positions)
            indptr[position + 1] = indptr[position] + len(neighbor_positions)
        indices = (
            np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64)
        )
        data = np.ones(len(indices), dtype=np.int64)
        self._nodes = nodes
        self._positions = positions
        self._matrix = sparse.csr_matrix(
            (data, indices, indptr), shape=(len(nodes), len(nodes))
        )

    @property
    def nodes(self) -> tuple[UserId, ...]:
        """User ids in canonical (insertion) order."""
        return self._nodes

    @property
    def matrix(self) -> "scipy.sparse.csr_matrix":
        """The 0/1 adjacency matrix (int64 CSR, rows in node order)."""
        return self._matrix

    def position_of(self, user_id: UserId) -> int:
        """Canonical row/column of ``user_id``; raises on unknown ids."""
        try:
            return self._positions[user_id]
        except KeyError:
            raise UnknownUserError(user_id) from None

    def positions_of(self, user_ids: Iterable[UserId]) -> "np.ndarray":
        """Canonical positions for many ids at once (int64 array)."""
        import numpy as np

        ids = list(user_ids)
        return np.fromiter(
            (self.position_of(user_id) for user_id in ids),
            dtype=np.int64,
            count=len(ids),
        )

    def neighbor_positions(self, user_id: UserId) -> "np.ndarray":
        """Positions of ``user_id``'s neighbors (sorted int64 array)."""
        position = self.position_of(user_id)
        matrix = self._matrix
        return matrix.indices[matrix.indptr[position] : matrix.indptr[position + 1]]


class SocialGraph:
    """An undirected social graph whose nodes carry :class:`Profile` data.

    Users must be added before edges referencing them; self-friendships are
    rejected.  All mutating operations keep the adjacency symmetric, which
    the test suite verifies property-based.
    """

    def __init__(self) -> None:
        self._adjacency: dict[UserId, set[UserId]] = {}
        self._profiles: dict[UserId, Profile] = {}
        self._edge_count = 0
        self._adjacency_index: AdjacencyIndex | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_user(self, profile: Profile) -> None:
        """Register a user.  Re-adding an id replaces its profile only."""
        user_id = profile.user_id
        if user_id not in self._adjacency:
            self._adjacency[user_id] = set()
            self._adjacency_index = None
        self._profiles[user_id] = profile

    def add_friendship(self, a: UserId, b: UserId) -> None:
        """Create the undirected edge ``{a, b}``.

        Raises
        ------
        GraphError
            If ``a == b`` (self-friendships are meaningless in OSNs).
        UnknownUserError
            If either endpoint was never added.
        """
        if a == b:
            raise GraphError(f"self-friendship rejected for user {a}")
        self._require_user(a)
        self._require_user(b)
        if b not in self._adjacency[a]:
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
            self._edge_count += 1
            self._adjacency_index = None

    def remove_friendship(self, a: UserId, b: UserId) -> None:
        """Remove the edge ``{a, b}`` if present (no-op otherwise)."""
        self._require_user(a)
        self._require_user(b)
        if b in self._adjacency[a]:
            self._adjacency[a].discard(b)
            self._adjacency[b].discard(a)
            self._edge_count -= 1
            self._adjacency_index = None

    @classmethod
    def from_edges(
        cls,
        profiles: Iterable[Profile],
        edges: Iterable[tuple[UserId, UserId]],
    ) -> "SocialGraph":
        """Build a graph from a profile iterable and an edge iterable."""
        graph = cls()
        for profile in profiles:
            graph.add_user(profile)
        for a, b in edges:
            graph.add_friendship(a, b)
        return graph

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, user_id: UserId) -> bool:
        return user_id in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def users(self) -> Iterator[UserId]:
        """Iterate over every user id."""
        return iter(self._adjacency)

    @property
    def num_users(self) -> int:
        """Number of registered users."""
        return len(self._adjacency)

    @property
    def num_friendships(self) -> int:
        """Number of undirected edges."""
        return self._edge_count

    def profile(self, user_id: UserId) -> Profile:
        """Profile of ``user_id``; raises :class:`UnknownUserError`."""
        self._require_user(user_id)
        return self._profiles[user_id]

    def profiles(self, user_ids: Iterable[UserId]) -> list[Profile]:
        """Profiles of the given users, preserving order."""
        return [self.profile(user_id) for user_id in user_ids]

    def friends(self, user_id: UserId) -> frozenset[UserId]:
        """The friend set of ``user_id`` as an immutable snapshot."""
        self._require_user(user_id)
        return frozenset(self._adjacency[user_id])

    def degree(self, user_id: UserId) -> int:
        """Number of friends of ``user_id``."""
        self._require_user(user_id)
        return len(self._adjacency[user_id])

    def are_friends(self, a: UserId, b: UserId) -> bool:
        """Whether the edge ``{a, b}`` exists."""
        self._require_user(a)
        self._require_user(b)
        return b in self._adjacency[a]

    def mutual_friends(self, a: UserId, b: UserId) -> frozenset[UserId]:
        """Users friends with both ``a`` and ``b``.

        Mutual friends are the backbone of the network similarity measure:
        both their count and the edges among them matter (Section III-B).
        """
        self._require_user(a)
        self._require_user(b)
        smaller, larger = sorted(
            (self._adjacency[a], self._adjacency[b]), key=len
        )
        return frozenset(smaller & larger)

    def two_hop_neighbors(self, user_id: UserId) -> frozenset[UserId]:
        """Users at graph distance exactly 2 from ``user_id``.

        These are the paper's *strangers*: contacts of friends who are not
        themselves friends (and not the user).
        """
        self._require_user(user_id)
        direct = self._adjacency[user_id]
        second: set[UserId] = set()
        for friend in direct:
            second.update(self._adjacency[friend])
        second.discard(user_id)
        second -= direct
        return frozenset(second)

    def distance(self, a: UserId, b: UserId, cutoff: int = 4) -> int | None:
        """Shortest-path distance between ``a`` and ``b`` up to ``cutoff``.

        Returns ``None`` when the distance exceeds ``cutoff`` (or the users
        are disconnected).  BFS with a cutoff keeps visibility resolution
        cheap — the pipeline only ever needs distances 0..2.
        """
        self._require_user(a)
        self._require_user(b)
        if a == b:
            return 0
        frontier = {a}
        seen = {a}
        for depth in range(1, cutoff + 1):
            next_frontier: set[UserId] = set()
            for node in frontier:
                next_frontier.update(self._adjacency[node])
            next_frontier -= seen
            if b in next_frontier:
                return depth
            if not next_frontier:
                return None
            seen.update(next_frontier)
            frontier = next_frontier
        return None

    def adjacency_index(self) -> AdjacencyIndex:
        """The cached CSR adjacency snapshot (built lazily).

        The batched scoring core (``NetworkSimilarity.for_strangers``)
        works off this index instead of per-stranger set arithmetic.  The
        cache is dropped on every mutation (``add_user`` registering a new
        id, ``add_friendship``, ``remove_friendship``), so a fresh call
        after a mutation always reflects the current graph.

        Requires scipy; callers with an optional fast path should catch
        ``ImportError`` and fall back to the scalar route.
        """
        if self._adjacency_index is None:
            self._adjacency_index = AdjacencyIndex(self._adjacency)
        return self._adjacency_index

    def edges(self) -> Iterator[tuple[UserId, UserId]]:
        """Iterate over undirected edges once each, as ``(min, max)``."""
        for user_id, neighbors in self._adjacency.items():
            for neighbor in neighbors:
                if user_id < neighbor:
                    yield (user_id, neighbor)

    def edges_within(self, nodes: Iterable[UserId]) -> int:
        """Count edges of the subgraph induced by ``nodes``."""
        node_set = set(nodes)
        count = 0
        for node in node_set:
            self._require_user(node)
            count += len(self._adjacency[node] & node_set)
        return count // 2

    def to_networkx(self) -> nx.Graph:
        """Export to a :class:`networkx.Graph` (profiles as node data)."""
        exported = nx.Graph()
        for user_id in self._adjacency:
            exported.add_node(user_id, profile=self._profiles[user_id])
        exported.add_edges_from(self.edges())
        return exported

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_user(self, user_id: UserId) -> None:
        if user_id not in self._adjacency:
            raise UnknownUserError(user_id)
