"""Resolution of the visibility bit ``V_s(i, o)`` (Section II).

The benefit measure needs, for every benefit item ``i`` of a stranger
``s``, whether the owner ``o`` can currently see it.  In the paper this is
observed directly through the Facebook API; here it is derived from the
stranger's privacy settings and the owner/stranger graph distance (always 2
for strangers, but the functions accept any pair so the same machinery
serves friends and unrelated users in the examples).
"""

from __future__ import annotations

from ..types import BenefitItem, UserId
from .social_graph import SocialGraph

#: Strangers are 2-hop contacts by definition, so visibility checks that do
#: not need an exact distance can assume this.
STRANGER_DISTANCE = 2


def item_visibility(
    graph: SocialGraph,
    viewer: UserId,
    holder: UserId,
    item: BenefitItem,
) -> bool:
    """Whether ``viewer`` can see ``item`` on ``holder``'s profile.

    The graph distance is computed with a cutoff of 3; pairs farther apart
    (or disconnected) only see :class:`~repro.types.VisibilityLevel.PUBLIC`
    items.
    """
    distance = graph.distance(viewer, holder, cutoff=3)
    if distance is None:
        distance = 4  # effectively "unrelated": only PUBLIC passes
    return graph.profile(holder).is_visible(item, distance)


def visible_items(
    graph: SocialGraph,
    viewer: UserId,
    holder: UserId,
) -> tuple[BenefitItem, ...]:
    """Every benefit item of ``holder`` visible to ``viewer``."""
    distance = graph.distance(viewer, holder, cutoff=3)
    if distance is None:
        distance = 4
    return graph.profile(holder).visible_items(distance)


def stranger_visibility_vector(
    graph: SocialGraph,
    owner: UserId,
    stranger: UserId,
) -> dict[BenefitItem, bool]:
    """The full ``V_s(i, o)`` vector for an owner/stranger pair.

    Uses the stranger distance of 2 directly (the pair is assumed to be a
    valid owner/stranger pair; :class:`~repro.graph.ego.EgoNetwork`
    guarantees that).  Avoiding a BFS per item keeps the benefit
    computation O(items) per stranger.
    """
    profile = graph.profile(stranger)
    del owner  # distance is fixed by the stranger relationship
    return {
        item: profile.is_visible(item, STRANGER_DISTANCE)
        for item in BenefitItem
    }
