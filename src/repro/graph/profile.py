"""User profiles: categorical attributes and per-item privacy settings.

A profile carries two kinds of information the pipeline consumes:

* **attributes** — categorical values (gender, locale, last name, ...) used
  by the similarity measures and by Squeezer clustering;
* **privacy settings** — one :class:`~repro.types.VisibilityLevel` per
  benefit item, from which the visibility bit ``V_s(i, o)`` of the benefit
  measure (Section II) and the visibility tables (IV, V) are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..errors import ProfileError
from ..types import BenefitItem, ProfileAttribute, UserId, VisibilityLevel

#: Privacy settings used when a profile does not specify one for an item.
#: Facebook's 2011-era defaults were famously permissive (Section I cites
#: [5], [6]); "friends of friends" is the recommended-default audience the
#: paper calls out for most profile parts.
DEFAULT_VISIBILITY = VisibilityLevel.FRIENDS_OF_FRIENDS


@dataclass
class Profile:
    """A single user's profile.

    Parameters
    ----------
    user_id:
        Identifier of the profile holder.
    attributes:
        Mapping from :class:`ProfileAttribute` to its categorical value.
        Missing attributes are treated as unknown (similarity measures skip
        them; Squeezer treats absence itself as a category).
    privacy:
        Mapping from :class:`BenefitItem` to the audience that may see it.
        Items absent from the mapping fall back to
        :data:`DEFAULT_VISIBILITY`.
    """

    user_id: UserId
    attributes: dict[ProfileAttribute, str] = field(default_factory=dict)
    privacy: dict[BenefitItem, VisibilityLevel] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for attribute, value in self.attributes.items():
            if not isinstance(attribute, ProfileAttribute):
                raise ProfileError(
                    f"attribute keys must be ProfileAttribute, got {attribute!r}"
                )
            if not isinstance(value, str) or not value:
                raise ProfileError(
                    f"attribute {attribute.value} must be a non-empty string, "
                    f"got {value!r}"
                )
        for item, level in self.privacy.items():
            if not isinstance(item, BenefitItem):
                raise ProfileError(
                    f"privacy keys must be BenefitItem, got {item!r}"
                )
            if not isinstance(level, VisibilityLevel):
                raise ProfileError(
                    f"privacy values must be VisibilityLevel, got {level!r}"
                )

    def attribute(self, attribute: ProfileAttribute) -> str | None:
        """Value of ``attribute``, or ``None`` when the user left it blank."""
        return self.attributes.get(attribute)

    def has_attribute(self, attribute: ProfileAttribute) -> bool:
        """Whether the user filled in ``attribute``."""
        return attribute in self.attributes

    def privacy_level(self, item: BenefitItem) -> VisibilityLevel:
        """Privacy setting of ``item`` (defaulting per Facebook-era norms)."""
        return self.privacy.get(item, DEFAULT_VISIBILITY)

    def is_visible(self, item: BenefitItem, distance: int) -> bool:
        """The visibility bit ``V_s(i, o)`` for a viewer at ``distance``.

        For the paper's setting the viewer is always the owner, a
        friend-of-friend, i.e. ``distance == 2``.
        """
        return self.privacy_level(item).visible_at_distance(distance)

    def visible_items(self, distance: int) -> tuple[BenefitItem, ...]:
        """All benefit items visible to a viewer at ``distance``."""
        return tuple(
            item for item in BenefitItem if self.is_visible(item, distance)
        )

    def attribute_vector(
        self, attributes: tuple[ProfileAttribute, ...]
    ) -> tuple[str | None, ...]:
        """Values of the requested attributes, preserving order.

        Squeezer and the profile-similarity measure operate on fixed
        attribute tuples; unknown attributes surface as ``None`` so callers
        decide how to treat them.
        """
        return tuple(self.attributes.get(attribute) for attribute in attributes)

    def copy(self) -> "Profile":
        """Deep-enough copy (the value types are immutable)."""
        return Profile(
            user_id=self.user_id,
            attributes=dict(self.attributes),
            privacy=dict(self.privacy),
        )


def value_frequencies(
    profiles: Mapping[UserId, Profile] | list[Profile],
    attribute: ProfileAttribute,
) -> dict[str, float]:
    """Relative frequency of each value of ``attribute`` in a population.

    The frequencies drive the mismatch term of the reconstructed ``PS()``
    measure and the support computations of Squeezer.  Users who left the
    attribute blank do not contribute.
    """
    population = (
        list(profiles.values()) if isinstance(profiles, Mapping) else list(profiles)
    )
    counts: dict[str, int] = {}
    filled = 0
    for profile in population:
        value = profile.attribute(attribute)
        if value is None:
            continue
        counts[value] = counts.get(value, 0) + 1
        filled += 1
    if filled == 0:
        return {}
    return {value: count / filled for value, count in counts.items()}
