"""Structural helpers over :class:`~repro.graph.social_graph.SocialGraph`.

These are the small graph-theoretic quantities the similarity measures and
the experiment analysis need: induced-subgraph densities (the *cohesion* of
a stranger's mutual-friend community), connected components within a node
subset, and degree statistics for dataset characterization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..types import UserId
from .social_graph import SocialGraph


def edge_count_within(graph: SocialGraph, nodes: Iterable[UserId]) -> int:
    """Number of edges in the subgraph induced by ``nodes``."""
    return graph.edges_within(nodes)


def induced_density(graph: SocialGraph, nodes: Iterable[UserId]) -> float:
    """Edge density of the subgraph induced by ``nodes``.

    Density is ``edges / possible_edges``; subsets of size < 2 have density
    0 by convention (a lone mutual friend provides no cohesion signal).
    """
    node_list = list(set(nodes))
    size = len(node_list)
    if size < 2:
        return 0.0
    possible = size * (size - 1) / 2
    return edge_count_within(graph, node_list) / possible


def induced_components(
    graph: SocialGraph, nodes: Iterable[UserId]
) -> list[frozenset[UserId]]:
    """Connected components of the subgraph induced by ``nodes``.

    Used to characterize how a stranger's mutual friends cluster around the
    owner — a single large component signals one dense community, many
    singletons signal scattered acquaintances.
    """
    remaining = set(nodes)
    components: list[frozenset[UserId]] = []
    while remaining:
        seed = next(iter(remaining))
        component = {seed}
        frontier = {seed}
        while frontier:
            next_frontier: set[UserId] = set()
            for node in frontier:
                next_frontier.update(graph.friends(node) & remaining)
            next_frontier -= component
            component.update(next_frontier)
            frontier = next_frontier
        components.append(frozenset(component))
        remaining -= component
    components.sort(key=len, reverse=True)
    return components


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of a graph's degree distribution."""

    num_users: int
    num_friendships: int
    min_degree: int
    max_degree: int
    mean_degree: float

    @property
    def density(self) -> float:
        """Global edge density of the graph."""
        if self.num_users < 2:
            return 0.0
        possible = self.num_users * (self.num_users - 1) / 2
        return self.num_friendships / possible


def degree_statistics(graph: SocialGraph) -> DegreeStatistics:
    """Compute :class:`DegreeStatistics` for ``graph``.

    An empty graph yields all-zero statistics rather than raising, so
    dataset reports stay total.
    """
    degrees = [graph.degree(user) for user in graph.users()]
    if not degrees:
        return DegreeStatistics(0, 0, 0, 0, 0.0)
    return DegreeStatistics(
        num_users=graph.num_users,
        num_friendships=graph.num_friendships,
        min_degree=min(degrees),
        max_degree=max(degrees),
        mean_degree=sum(degrees) / len(degrees),
    )
