"""Structural helpers over :class:`~repro.graph.social_graph.SocialGraph`.

These are the small graph-theoretic quantities the similarity measures and
the experiment analysis need: induced-subgraph densities (the *cohesion* of
a stranger's mutual-friend community), connected components within a node
subset, and degree statistics for dataset characterization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..types import UserId
from .social_graph import SocialGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np


def edge_count_within(graph: SocialGraph, nodes: Iterable[UserId]) -> int:
    """Number of edges in the subgraph induced by ``nodes``."""
    return graph.edges_within(nodes)


def ns_dirty_after_edge_toggle(
    graph: SocialGraph, owner: UserId, a: UserId, b: UserId
) -> frozenset[UserId] | None:
    """Strangers whose ``NS(owner, s)`` the edge toggle ``{a, b}`` moved.

    ``NS(o, s)`` is a function of the mutual-friend set
    ``M = N(o) ∩ N(s)`` and the edges within ``M`` (count factor and
    cohesion factor, :mod:`repro.similarity.network`).  Toggling the
    single edge ``{a, b}`` changes exactly two adjacency rows — ``N(a)``
    gains/loses ``b`` and ``N(b)`` gains/loses ``a`` — so for an owner
    ``o ∉ {a, b}``:

    * ``M(o, s)`` changes only for ``s ∈ {a, b}`` (``N(o)`` and every
      other ``N(s)`` row are untouched);
    * the edge ``{a, b}`` is counted inside ``M(o, s)`` only when both
      endpoints are mutual friends of ``o`` and ``s`` — i.e. when both
      are friends of the owner *and* ``s ∈ N(a) ∩ N(b)``;
    * 2-hop stranger-set membership changes only for ``a`` or ``b``
      (2-hop reach of ``o`` grows/shrinks through its unchanged friend
      rows by at most the far endpoint).

    Hence the exact dirty set is ``{a, b}``, plus ``N(a) ∩ N(b)`` when
    both endpoints are friends of the owner.  (``N(a) ∩ N(b)`` itself is
    invariant under toggling ``{a, b}`` — neither endpoint is its own
    neighbor — so the set is the same computed before or after the
    mutation.)  Returns ``None`` when the owner *is* an endpoint: their
    friend row changed, every stranger's mutual set is suspect, and the
    caller must fall back to a full recompute.
    """
    if owner == a or owner == b:
        return None
    dirty = {a, b}
    friends = graph.friends(owner)
    if a in friends and b in friends:
        dirty |= graph.mutual_friends(a, b)
    return frozenset(dirty)


def induced_density(graph: SocialGraph, nodes: Iterable[UserId]) -> float:
    """Edge density of the subgraph induced by ``nodes``.

    Density is ``edges / possible_edges``; subsets of size < 2 have density
    0 by convention (a lone mutual friend provides no cohesion signal).
    """
    node_list = list(set(nodes))
    size = len(node_list)
    if size < 2:
        return 0.0
    possible = size * (size - 1) / 2
    return edge_count_within(graph, node_list) / possible


def induced_components(
    graph: SocialGraph, nodes: Iterable[UserId]
) -> list[frozenset[UserId]]:
    """Connected components of the subgraph induced by ``nodes``.

    Used to characterize how a stranger's mutual friends cluster around the
    owner — a single large component signals one dense community, many
    singletons signal scattered acquaintances.
    """
    remaining = set(nodes)
    components: list[frozenset[UserId]] = []
    while remaining:
        seed = next(iter(remaining))
        component = {seed}
        frontier = {seed}
        while frontier:
            next_frontier: set[UserId] = set()
            for node in frontier:
                next_frontier.update(graph.friends(node) & remaining)
            next_frontier -= component
            component.update(next_frontier)
            frontier = next_frontier
        components.append(frozenset(component))
        remaining -= component
    components.sort(key=len, reverse=True)
    return components


def batched_mutual_stats(
    graph: SocialGraph, owner: UserId, others: Sequence[UserId]
) -> tuple["np.ndarray", "np.ndarray"]:
    """Mutual-friend counts and mutual-subgraph edge counts, batched.

    For every user ``s`` in ``others`` this returns (aligned int64 arrays)

    * ``counts[i] = |N(owner) ∩ N(s)|`` — the mutual-friend count, and
    * ``edges[i]`` — the number of edges of the subgraph induced by those
      mutual friends (the cohesion numerator of ``NS()``).

    Both come from the graph's cached CSR adjacency index: with ``F`` the
    owner's friends, ``X = A[F, others]`` holds every mutual-friend
    indicator at once, so ``counts`` is a column sum and ``edges`` is the
    batched common-neighbor triangle count
    ``diag(Xᵀ A_F X) / 2`` evaluated as an elementwise product — one
    sparse matmul for the whole stranger set instead of per-stranger set
    arithmetic.  All data stays integer, so the results are exactly the
    scalar quantities :meth:`SocialGraph.mutual_friends` and
    :meth:`SocialGraph.edges_within` would produce.

    Raises :class:`~repro.errors.UnknownUserError` for ids not in the
    graph and ``ImportError`` when scipy is unavailable (callers fall
    back to the scalar path).
    """
    import numpy as np

    index = graph.adjacency_index()
    other_positions = index.positions_of(others)
    friend_positions = index.neighbor_positions(owner)
    if len(friend_positions) == 0 or len(other_positions) == 0:
        zeros = np.zeros(len(other_positions), dtype=np.int64)
        return zeros, zeros.copy()
    words = (len(friend_positions) + 63) // 64
    cells = len(friend_positions) * len(other_positions)
    if (
        cells <= _BITSET_KERNEL_CELLS
        and index.matrix.shape[0] * words <= _BITSET_KERNEL_WORDS
    ):
        return _mutual_stats_bitset(index, friend_positions, other_positions)
    return _mutual_stats_sparse(index, friend_positions, other_positions)


#: Ceilings for the bitset kernel: the ``|friends| x |strangers|``
#: pair matrix (int64 cells) and the per-node bitmask table
#: (``num_nodes x words`` uint64).  Ego networks sit orders of magnitude
#: below both; pathological owners fall back to the sparse-matmul kernel.
_BITSET_KERNEL_CELLS = 16_000_000
_BITSET_KERNEL_WORDS = 8_000_000


def _popcount(array: "np.ndarray") -> "np.ndarray":
    """Per-element population count of a uint64 array."""
    import numpy as np

    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(array).astype(np.int64)
    table = np.array([bin(v).count("1") for v in range(256)], dtype=np.int64)
    as_bytes = array.view(np.uint8).reshape(array.shape + (8,))
    return table[as_bytes].sum(axis=-1)


def _mutual_stats_bitset(
    index, friend_positions: "np.ndarray", other_positions: "np.ndarray"
) -> tuple["np.ndarray", "np.ndarray"]:
    """Bitset kernel: one uint64 mask word-group per node over the
    owner's friend set.

    One pass over the friends' CSR rows scatters ``N(f) ∩ ·`` bits into a
    per-node mask table, after which every quantity is bit arithmetic:
    the mutual-friend count of stranger ``s`` is a ``bincount`` of the
    scattered entries, a friend row of the table *is* the friend-subgraph
    adjacency row, and the induced edge count is the popcount of
    ``mask[f] & mask[s]`` summed over the stranger's mutual friends —
    no per-stranger set objects anywhere.
    """
    import numpy as np

    matrix = index.matrix
    indptr, indices = matrix.indptr, matrix.indices
    num_nodes = matrix.shape[0]
    num_friends = len(friend_positions)
    words = (num_friends + 63) // 64

    starts = indptr[friend_positions]
    lengths = indptr[friend_positions + 1] - starts
    total = int(lengths.sum())
    offsets = np.zeros(num_friends, dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    flat = (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, lengths)
        + np.repeat(starts, lengths)
    )
    neighbors = indices[flat]
    friend_slot = np.repeat(np.arange(num_friends, dtype=np.uint64), lengths)

    # masks[v, w] holds bits of N(v) ∩ friends for every node v
    masks = np.zeros((num_nodes, words), dtype=np.uint64)
    bits = np.uint64(1) << (friend_slot & np.uint64(63))
    word_of = (friend_slot >> np.uint64(6)).astype(np.int64)
    np.bitwise_or.at(masks, (neighbors, word_of), bits)

    counts = np.bincount(neighbors, minlength=num_nodes)[other_positions]

    # Each scattered entry is one (mutual friend f, node v) incidence;
    # keeping only entries whose target v is a queried stranger yields
    # exactly the (f ∈ M_s, s) pairs.  popcount(masks[f] & masks[s])
    # counts f's neighbors inside M_s, and summing it per stranger
    # double-counts the induced edges.
    is_target = np.zeros(num_nodes, dtype=bool)
    is_target[other_positions] = True
    is_pair = is_target[neighbors]
    pair_masks = (
        masks[friend_positions[friend_slot[is_pair].astype(np.int64)]]
        & masks[neighbors[is_pair]]
    )
    pair_counts = _popcount(pair_masks).sum(axis=1)
    doubled = np.bincount(
        neighbors[is_pair], weights=pair_counts, minlength=num_nodes
    )[other_positions]
    return counts.astype(np.int64), doubled.astype(np.int64) // 2


def _mutual_stats_sparse(
    index, friend_positions: "np.ndarray", other_positions: "np.ndarray"
) -> tuple["np.ndarray", "np.ndarray"]:
    """Sparse-matmul kernel for owners whose ``|friends| x |strangers|``
    product would make the dense indicator matrix too large."""
    import numpy as np

    adjacency = index.matrix
    friend_rows = adjacency[friend_positions]
    # X[f, i] = 1 iff friend f of the owner is also a friend of others[i].
    mutual_indicators = friend_rows[:, other_positions]
    counts = np.asarray(mutual_indicators.sum(axis=0)).ravel()
    friend_block = friend_rows[:, friend_positions]
    # diag(X^T A_F X) counts every ordered mutual-friend pair that is
    # connected, i.e. twice the induced edge count.
    paths = friend_block @ mutual_indicators
    doubled = np.asarray(
        paths.multiply(mutual_indicators).sum(axis=0)
    ).ravel()
    return counts.astype(np.int64), (doubled // 2).astype(np.int64)


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of a graph's degree distribution."""

    num_users: int
    num_friendships: int
    min_degree: int
    max_degree: int
    mean_degree: float

    @property
    def density(self) -> float:
        """Global edge density of the graph."""
        if self.num_users < 2:
            return 0.0
        possible = self.num_users * (self.num_users - 1) / 2
        return self.num_friendships / possible


def degree_statistics(graph: SocialGraph) -> DegreeStatistics:
    """Compute :class:`DegreeStatistics` for ``graph``.

    An empty graph yields all-zero statistics rather than raising, so
    dataset reports stay total.
    """
    degrees = [graph.degree(user) for user in graph.users()]
    if not degrees:
        return DegreeStatistics(0, 0, 0, 0, 0.0)
    return DegreeStatistics(
        num_users=graph.num_users,
        num_friendships=graph.num_friendships,
        min_degree=min(degrees),
        max_degree=max(degrees),
        mean_degree=sum(degrees) / len(degrees),
    )
