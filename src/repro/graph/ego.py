"""Owner-centric ego view: friends and *strangers* (2-hop contacts).

The paper restricts risk estimation to second-level contacts: "given a
social network user, hereafter owner, we compute risk levels for those users
that are connected to a friend of owner's friends" (Section II).  The ego
view materializes that stranger set once and exposes the owner-relative
queries the rest of the pipeline needs.
"""

from __future__ import annotations

from ..errors import GraphError
from ..types import UserId
from .profile import Profile
from .social_graph import SocialGraph


class EgoNetwork:
    """Snapshot of the social graph from one owner's perspective.

    The snapshot is computed eagerly at construction.  If the underlying
    graph changes (the paper stresses that stranger sets are dynamic),
    construct a fresh :class:`EgoNetwork` — that is exactly what the active
    learner's on-the-fly sampling is designed around.
    """

    def __init__(self, graph: SocialGraph, owner: UserId) -> None:
        if owner not in graph:
            raise GraphError(f"owner {owner} is not in the graph")
        self._graph = graph
        self._owner = owner
        self._friends = graph.friends(owner)
        self._strangers = graph.two_hop_neighbors(owner)

    @property
    def graph(self) -> SocialGraph:
        """The underlying social graph."""
        return self._graph

    @property
    def owner(self) -> UserId:
        """The owner's user id."""
        return self._owner

    @property
    def owner_profile(self) -> Profile:
        """The owner's profile."""
        return self._graph.profile(self._owner)

    @property
    def friends(self) -> frozenset[UserId]:
        """Direct friends of the owner."""
        return self._friends

    @property
    def strangers(self) -> frozenset[UserId]:
        """Second-level contacts — the candidates for risk labeling."""
        return self._strangers

    def is_stranger(self, user_id: UserId) -> bool:
        """Whether ``user_id`` is a stranger of this owner."""
        return user_id in self._strangers

    def stranger_profiles(self) -> dict[UserId, Profile]:
        """Profiles of every stranger, keyed by user id."""
        return {
            stranger: self._graph.profile(stranger)
            for stranger in self._strangers
        }

    def mutual_friends(self, stranger: UserId) -> frozenset[UserId]:
        """Mutual friends of owner and ``stranger``.

        For a stranger these are never empty by construction: a 2-hop
        contact is reachable through at least one shared friend.
        """
        return self._graph.mutual_friends(self._owner, stranger)

    def connecting_friends(self) -> dict[UserId, frozenset[UserId]]:
        """For every stranger, the friends that connect them to the owner."""
        return {
            stranger: self.mutual_friends(stranger)
            for stranger in self._strangers
        }

    def __repr__(self) -> str:
        return (
            f"EgoNetwork(owner={self._owner}, friends={len(self._friends)}, "
            f"strangers={len(self._strangers)})"
        )
