"""Simulated owners: parameterized ground-truth risk attitudes.

The paper's oracle is a human; ours is a :class:`SimulatedOwner` whose
*risk attitude* is a structured scoring function plus noise:

* **homophily** — higher network similarity lowers perceived risk (this is
  what Figure 7 measures);
* **attribute sensitivities** — stranger gender dominates, locale matters
  less, last name barely (the ordering Table I mines back out of the
  labels);
* **benefit-item sensitivities** — visible items reduce perceived risk,
  photos most strongly (the ordering Table II mines);
* **noise** — owners are not deterministic functions of their attitude.

The attitude parameters are drawn per owner from cohort distributions
calibrated to the paper's Tables I-III; the experiments then have to
*recover* those regularities through the real pipeline.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Mapping

from ..benefits.model import ThetaWeights
from ..errors import OracleError
from ..graph.profile import Profile
from ..learning.oracle import CallbackOracle, LabelQuery
from ..types import BenefitItem, Gender, Locale, ProfileAttribute, RiskLabel, UserId

#: The paper's empirical NS ceiling; attitudes normalize NS against it so
#: the homophily term spans its full range.
_NS_CEILING = 0.6

#: Mean item sensitivities, ordered to match Table II's mined importance
#: (photo by far the most label-relevant, wall/location the least).
_ITEM_SENSITIVITY_MEANS: dict[BenefitItem, float] = {
    # Photo gets a large margin over the rest: its visibility bit is very
    # unbalanced (~85 % visible, Tables IV/V), which depresses its IGR,
    # yet Table II reports it far ahead — owners must weigh it heavily.
    # The absolute magnitudes stay small: visibility is invisible to the
    # classifier's profile-based edge weights (by the paper's design), so
    # it is irreducible label noise for the learner; Table II only needs
    # the *ordering* of the dependence.
    BenefitItem.PHOTO: 0.090,
    BenefitItem.EDUCATION: 0.022,
    BenefitItem.WORK: 0.020,
    BenefitItem.FRIEND: 0.018,
    BenefitItem.HOMETOWN: 0.016,
    BenefitItem.LOCATION: 0.015,
    BenefitItem.WALL: 0.014,
}

#: Mean theta (benefit-importance) shares from Table III.
_THETA_MEANS: dict[BenefitItem, float] = {
    BenefitItem.HOMETOWN: 0.155,
    BenefitItem.FRIEND: 0.149,
    BenefitItem.PHOTO: 0.147,
    BenefitItem.LOCATION: 0.143,
    BenefitItem.EDUCATION: 0.1393,
    BenefitItem.WALL: 0.1328,
    BenefitItem.WORK: 0.1321,
}


@dataclass(frozen=True)
class RiskAttitude:
    """One owner's latent risk-scoring function.

    The risk score of a stranger is::

        score = network_weight  * (1 - min(NS / 0.6, 1))
              + gender_weight   * [stranger gender == risky_gender]
              + locale_weight   * [stranger locale != owner locale]
              + lastname_weight * [stranger last name unfamiliar]
              - sum_i item_sensitivity[i] * [item i visible]
              + Normal(0, noise_sd)

    and is thresholded at ``(threshold_risky, threshold_very_risky)`` into
    the three labels.
    """

    owner_locale: Locale
    risky_gender: Gender
    network_weight: float
    gender_weight: float
    locale_weight: float
    lastname_weight: float
    familiar_lastnames: frozenset[str]
    item_sensitivities: Mapping[BenefitItem, float]
    noise_sd: float
    threshold_risky: float
    threshold_very_risky: float

    def raw_score(
        self,
        stranger: Profile,
        network_similarity: float,
        visibility: Mapping[BenefitItem, bool],
    ) -> float:
        """Deterministic part of the risk score (before noise)."""
        # Owners see similarity as a coarse "x/100" figure (Section III-A)
        # and react to its rough magnitude, not its third decimal: the
        # perceived value is the lower edge of the 10%-wide bracket.
        perceived = int(network_similarity * 10.0) / 10.0
        ns_scaled = min(perceived / _NS_CEILING, 1.0)
        score = self.network_weight * (1.0 - ns_scaled)
        if stranger.attribute(ProfileAttribute.GENDER) == self.risky_gender.value:
            score += self.gender_weight
        if stranger.attribute(ProfileAttribute.LOCALE) != self.owner_locale.value:
            score += self.locale_weight
        last_name = stranger.attribute(ProfileAttribute.LAST_NAME)
        if last_name is not None and last_name not in self.familiar_lastnames:
            score += self.lastname_weight
        for item, sensitivity in self.item_sensitivities.items():
            if visibility.get(item, False):
                score -= sensitivity
        return score

    def label_for_score(self, score: float) -> RiskLabel:
        """Threshold a (noisy) score into a risk label."""
        if score < self.threshold_risky:
            return RiskLabel.NOT_RISKY
        if score < self.threshold_very_risky:
            return RiskLabel.RISKY
        return RiskLabel.VERY_RISKY

    def judge(
        self,
        stranger: Profile,
        network_similarity: float,
        visibility: Mapping[BenefitItem, bool],
        rng: random.Random,
    ) -> RiskLabel:
        """Full noisy judgment of one stranger."""
        score = self.raw_score(stranger, network_similarity, visibility)
        score += rng.gauss(0.0, self.noise_sd)
        return self.label_for_score(score)

    @classmethod
    def sample(
        cls,
        rng: random.Random,
        owner_locale: Locale,
        owner_last_name: str | None = None,
    ) -> "RiskAttitude":
        """Draw a cohort-calibrated attitude.

        Gender is the dominant attribute for roughly 72 % of owners and
        locale for most of the rest (Table I: gender I1 for 34/47, locale
        for 13/47); last name is almost always negligible, with a rare
        owner caring about it more than locale.
        """
        gender_weight = rng.uniform(0.28, 0.45)
        locale_weight = rng.uniform(0.08, 0.20)
        lastname_weight = rng.uniform(0.0, 0.03)
        if rng.random() < 0.28:
            gender_weight, locale_weight = locale_weight, gender_weight
        if rng.random() < 0.04:
            lastname_weight, locale_weight = locale_weight, lastname_weight

        sensitivities = {
            item: max(0.0, rng.gauss(mean, mean * 0.30))
            for item, mean in _ITEM_SENSITIVITY_MEANS.items()
        }
        familiar = frozenset({owner_last_name} if owner_last_name else set())
        return cls(
            owner_locale=owner_locale,
            risky_gender=rng.choice([Gender.MALE, Gender.FEMALE]),
            network_weight=rng.uniform(0.35, 0.60),
            gender_weight=gender_weight,
            locale_weight=locale_weight,
            lastname_weight=lastname_weight,
            familiar_lastnames=familiar,
            item_sensitivities=sensitivities,
            noise_sd=rng.uniform(0.015, 0.04),
            threshold_risky=rng.uniform(0.40, 0.52),
            threshold_very_risky=rng.uniform(0.62, 0.74),
        )


#: Named attitude archetypes for robustness experiments.  The cohort
#: sampler (:meth:`RiskAttitude.sample`) draws "balanced" owners; the
#: archetypes stress the learner with qualitatively different judges.
ARCHETYPES = ("balanced", "paranoid", "relaxed", "heterophile")


def sample_archetype_attitude(
    archetype: str,
    rng: random.Random,
    owner_locale: Locale,
    owner_last_name: str | None = None,
) -> RiskAttitude:
    """Draw an attitude from a named archetype family.

    * ``balanced`` — the default cohort sampler;
    * ``paranoid`` — low thresholds: almost nobody is *not risky*;
    * ``relaxed`` — high thresholds: almost nobody is *very risky*;
    * ``heterophile`` — visibility (benefit) dominates the judgment and
      the homophily term is weak, the Twitter-style owner of Section II.

    Risk attitude "has been found to be very subjective" (Section II) —
    the learner must cope with every family, which is what the archetype
    benchmark (E22) verifies.
    """
    base = RiskAttitude.sample(rng, owner_locale, owner_last_name)
    if archetype == "balanced":
        return base
    if archetype == "paranoid":
        return dataclasses.replace(
            base,
            threshold_risky=rng.uniform(0.18, 0.28),
            threshold_very_risky=rng.uniform(0.42, 0.55),
        )
    if archetype == "relaxed":
        return dataclasses.replace(
            base,
            threshold_risky=rng.uniform(0.62, 0.74),
            threshold_very_risky=rng.uniform(0.88, 0.98),
        )
    if archetype == "heterophile":
        boosted = {
            item: sensitivity * 3.0
            for item, sensitivity in base.item_sensitivities.items()
        }
        return dataclasses.replace(
            base,
            network_weight=rng.uniform(0.10, 0.20),
            item_sensitivities=boosted,
            threshold_risky=rng.uniform(0.28, 0.40),
            threshold_very_risky=rng.uniform(0.50, 0.62),
        )
    raise OracleError(
        f"unknown archetype {archetype!r}; expected one of {ARCHETYPES}"
    )


def sample_thetas(rng: random.Random) -> ThetaWeights:
    """Per-owner theta weights scattered around the Table III means."""
    raw = {}
    for item, mean_share in _THETA_MEANS.items():
        weight = mean_share * 5.0 + rng.gauss(0.0, 0.08)
        raw[item] = min(1.0, max(0.05, weight))
    return ThetaWeights(raw)


def sample_confidence(rng: random.Random) -> float:
    """Per-owner stopping confidence (cohort mean ~78.39 in the paper)."""
    return min(95.0, max(55.0, rng.gauss(78.39, 8.0)))


@dataclass
class SimulatedOwner:
    """A study participant: profile, attitude, thetas, and ground truth.

    ``ground_truth`` (stranger → label) is assigned by the population
    builder once the ego network and its similarity/visibility values
    exist; :meth:`as_oracle` then answers label queries from it, exactly
    as a consistent human would.
    """

    user_id: UserId
    profile: Profile
    attitude: RiskAttitude
    thetas: ThetaWeights
    confidence: float
    ground_truth: dict[UserId, RiskLabel] = field(default_factory=dict)

    @property
    def gender(self) -> Gender:
        """The owner's gender (defaulting to male if blank)."""
        value = self.profile.attribute(ProfileAttribute.GENDER)
        return Gender(value) if value else Gender.MALE

    @property
    def locale(self) -> Locale:
        """The owner's locale."""
        return self.attitude.owner_locale

    def truth(self, stranger: UserId) -> RiskLabel:
        """Ground-truth label of one stranger."""
        try:
            return self.ground_truth[stranger]
        except KeyError:
            raise OracleError(
                f"owner {self.user_id} has no ground truth for "
                f"stranger {stranger}"
            ) from None

    def judge_new_stranger(self, graph, stranger: UserId) -> RiskLabel:
        """Lazily judge a user pulled into 2-hop view after generation.

        Cross-ego mutations (an edge bridging two owners' worlds) make
        users visible as strangers that the population builder never
        judged; without a label the oracle errors and warm re-scores
        500.  This extends the ground truth on demand, mirroring the
        population builder's judgment exactly — NS, the visibility
        vector, and the owner's attitude — with the noise stream seeded
        per ``(owner, stranger)`` pair, so every shard, worker process,
        and WAL replay derives the identical label no matter when or in
        what order the extension runs.
        """
        label = self.ground_truth.get(stranger)
        if label is not None:
            return label
        # Imported lazily: similarity/visibility sit above synth in the
        # layering and are only needed on this rare extension path.
        from ..graph.visibility import stranger_visibility_vector
        from ..similarity.network import NetworkSimilarity

        similarity = NetworkSimilarity()(graph, self.user_id, stranger)
        visibility = stranger_visibility_vector(graph, self.user_id, stranger)
        rng = random.Random(f"lazy-judgment:{self.user_id}:{stranger}")
        label = self.attitude.judge(
            graph.profile(stranger), similarity, visibility, rng
        )
        self.ground_truth[stranger] = label
        return label

    def as_oracle(self) -> CallbackOracle:
        """A label oracle answering from the ground truth."""

        def answer(query: LabelQuery) -> RiskLabel:
            return self.truth(query.stranger)

        return CallbackOracle(answer)

    def label_distribution(self) -> dict[RiskLabel, int]:
        """How many strangers carry each ground-truth label."""
        counts = {label: 0 for label in RiskLabel}
        for label in self.ground_truth.values():
            counts[label] += 1
        return counts
