"""Ego-network generation: one owner, their friends, their strangers.

The generator mirrors how real stranger sets arise (Section II of the
paper): friends cluster into communities, and strangers attach to one
community through a handful of mutual friends.  The mutual-friend count is
drawn from a heavy-tailed distribution — most strangers share one or two
friends with the owner, a few share dozens — which is what produces the
skewed network-similarity histogram of Figure 4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigError
from ..graph.social_graph import SocialGraph
from ..types import Locale, UserId
from .profiles import CommunityFlavor, ProfileGenerator


@dataclass(frozen=True)
class EgoNetConfig:
    """Shape of one generated ego network.

    ``friend_density`` is the probability of an edge between two friends in
    the same community — it directly drives the cohesion factor of the
    ``NS()`` measure.  ``owner_locale_affinity`` is the probability a
    community shares the owner's locale (the rest get random locales,
    ensuring Table V sees all locales).
    """

    num_friends: int = 40
    num_strangers: int = 150
    num_communities: int = 5
    friend_density: float = 0.35
    owner_locale_affinity: float = 0.6
    stranger_stranger_density: float = 0.02

    def __post_init__(self) -> None:
        if self.num_friends < 2:
            raise ConfigError("num_friends must be >= 2")
        if self.num_strangers < 1:
            raise ConfigError("num_strangers must be >= 1")
        if not 1 <= self.num_communities <= self.num_friends:
            raise ConfigError(
                "num_communities must lie in [1, num_friends]"
            )
        for name, value in (
            ("friend_density", self.friend_density),
            ("owner_locale_affinity", self.owner_locale_affinity),
            ("stranger_stranger_density", self.stranger_stranger_density),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must lie in [0, 1], got {value}")


@dataclass(frozen=True)
class EgoNetHandle:
    """Ids of the pieces of one generated ego network."""

    owner: UserId
    friends: tuple[UserId, ...]
    strangers: tuple[UserId, ...]
    communities: tuple[tuple[UserId, ...], ...]


def sample_mutual_friend_count(rng: random.Random, ceiling: int) -> int:
    """Heavy-tailed mutual-friend count for one stranger.

    Calibrated to the paper's observations: the bulk of strangers are
    weakly connected, yet "some strangers can have more than 40 mutual
    friends with an owner".
    """
    roll = rng.random()
    if roll < 0.55:
        count = 1
    elif roll < 0.80:
        count = 2
    elif roll < 0.92:
        count = rng.randint(3, 5)
    elif roll < 0.98:
        count = rng.randint(6, 12)
    else:
        count = rng.randint(13, 45)
    return max(1, min(count, ceiling))


def generate_ego_network(
    graph: SocialGraph,
    owner: UserId,
    rng: random.Random,
    profiles: ProfileGenerator,
    config: EgoNetConfig | None = None,
    next_id: int | None = None,
    owner_locale: Locale | None = None,
) -> EgoNetHandle:
    """Grow one owner's ego network inside ``graph``.

    The owner must already exist in ``graph`` (with their profile); this
    function adds friends and strangers with ids starting at ``next_id``
    (default: one past the current maximum id).

    Returns a handle with the generated ids, which the study builder uses
    to attach ground-truth labels.
    """
    cfg = config or EgoNetConfig()
    if next_id is None:
        next_id = max(graph.users(), default=0) + 1
    locale = owner_locale or _locale_of(graph, owner, rng)

    # --- friend communities -------------------------------------------
    flavors: list[CommunityFlavor] = []
    for _ in range(cfg.num_communities):
        if rng.random() < cfg.owner_locale_affinity:
            flavors.append(profiles.sample_flavor(locale))
        else:
            flavors.append(profiles.sample_flavor())

    community_sizes = _split_sizes(cfg.num_friends, cfg.num_communities, rng)
    communities: list[list[UserId]] = []
    friends: list[UserId] = []
    for flavor, size in zip(flavors, community_sizes):
        members: list[UserId] = []
        for _ in range(size):
            profile = profiles.sample_profile(next_id, flavor)
            graph.add_user(profile)
            graph.add_friendship(owner, next_id)
            members.append(next_id)
            friends.append(next_id)
            next_id += 1
        # intra-community friend edges give NS its cohesion signal
        for position, a in enumerate(members):
            for b in members[position + 1 :]:
                if rng.random() < cfg.friend_density:
                    graph.add_friendship(a, b)
        communities.append(members)

    # --- strangers -----------------------------------------------------
    strangers: list[UserId] = []
    community_strangers: list[list[UserId]] = [[] for _ in communities]
    for _ in range(cfg.num_strangers):
        community_index = rng.randrange(len(communities))
        community = communities[community_index]
        flavor = flavors[community_index]
        count = sample_mutual_friend_count(rng, len(community))
        anchors = rng.sample(community, count)
        profile = profiles.sample_profile(next_id, flavor)
        graph.add_user(profile)
        for anchor in anchors:
            graph.add_friendship(next_id, anchor)
        community_strangers[community_index].append(next_id)
        strangers.append(next_id)
        next_id += 1

    # stranger-stranger edges inside a community (do not affect NS with
    # the owner, but make the substrate less artificial)
    for members in community_strangers:
        for position, a in enumerate(members):
            for b in members[position + 1 :]:
                if rng.random() < cfg.stranger_stranger_density:
                    graph.add_friendship(a, b)

    return EgoNetHandle(
        owner=owner,
        friends=tuple(friends),
        strangers=tuple(strangers),
        communities=tuple(tuple(members) for members in communities),
    )


def _split_sizes(total: int, parts: int, rng: random.Random) -> list[int]:
    """Split ``total`` into ``parts`` positive sizes, mildly uneven."""
    if parts == 1:
        return [total]
    weights = [rng.uniform(0.5, 1.5) for _ in range(parts)]
    weight_sum = sum(weights)
    sizes = [max(1, round(total * weight / weight_sum)) for weight in weights]
    # fix rounding drift while keeping every part >= 1
    drift = total - sum(sizes)
    index = 0
    while drift != 0:
        step = 1 if drift > 0 else -1
        if sizes[index % parts] + step >= 1:
            sizes[index % parts] += step
            drift -= step
        index += 1
    return sizes


def _locale_of(graph: SocialGraph, owner: UserId, rng: random.Random) -> Locale:
    from ..types import ProfileAttribute

    value = graph.profile(owner).attribute(ProfileAttribute.LOCALE)
    if value is None:
        return rng.choice(list(Locale))
    try:
        return Locale(value)
    except ValueError:
        return rng.choice(list(Locale))
