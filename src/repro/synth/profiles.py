"""Categorical profile sampling with homophily.

Profiles are drawn relative to a *community flavor* — a (locale, hometown,
school) triple shared by a friend community.  Members of the same
community draw their attributes from the flavor with high probability and
from the wider locale pools otherwise, giving the generated graph the
homophily structure the paper's measures are designed to detect.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.profile import Profile
from ..types import Gender, Locale, ProfileAttribute
from .names import EMPLOYERS, HOMETOWNS, LAST_NAMES, SCHOOLS, zipf_weights
from .visibility import VisibilitySampler


@dataclass(frozen=True)
class CommunityFlavor:
    """The shared attribute tendencies of one friend community."""

    locale: Locale
    hometown: str
    school: str


@dataclass(frozen=True)
class ProfileGeneratorConfig:
    """Knobs of the profile generator.

    ``flavor_adherence`` is the probability a community member adopts each
    flavored attribute; ``fill_rates`` model users leaving fields blank
    (the paper computes statistics "on those available user profiles").
    """

    flavor_adherence: float = 0.75
    female_fraction: float = 0.45
    fill_rates: dict[ProfileAttribute, float] = field(
        default_factory=lambda: {
            ProfileAttribute.GENDER: 0.98,
            ProfileAttribute.LOCALE: 1.0,
            ProfileAttribute.LAST_NAME: 0.97,
            ProfileAttribute.HOMETOWN: 0.80,
            ProfileAttribute.EDUCATION: 0.70,
            ProfileAttribute.WORK: 0.60,
            ProfileAttribute.LOCATION: 0.75,
        }
    )


class ProfileGenerator:
    """Draws :class:`~repro.graph.profile.Profile` objects.

    Parameters
    ----------
    rng:
        Randomness source (seed for reproducibility).
    config:
        Generator knobs.
    """

    def __init__(
        self,
        rng: random.Random,
        config: ProfileGeneratorConfig | None = None,
    ) -> None:
        self._rng = rng
        self._config = config or ProfileGeneratorConfig()
        self._visibility = VisibilitySampler(rng)

    @property
    def config(self) -> ProfileGeneratorConfig:
        """The active configuration."""
        return self._config

    def sample_flavor(self, locale: Locale | None = None) -> CommunityFlavor:
        """Draw a community flavor (optionally pinning the locale)."""
        chosen_locale = locale or self._rng.choice(list(Locale))
        return CommunityFlavor(
            locale=chosen_locale,
            hometown=self._weighted_choice(HOMETOWNS[chosen_locale]),
            school=self._weighted_choice(SCHOOLS[chosen_locale]),
        )

    def sample_profile(
        self,
        user_id: int,
        flavor: CommunityFlavor,
        gender: Gender | None = None,
    ) -> Profile:
        """Draw one profile under a community flavor.

        Locale sticks to the flavor with ``flavor_adherence`` probability;
        hometown and education likewise; last name always comes from the
        *effective* locale's pool, so locale and last name correlate — one
        of the regularities the importance analysis can pick up.
        """
        cfg = self._config
        effective_locale = (
            flavor.locale
            if self._rng.random() < cfg.flavor_adherence
            else self._rng.choice(list(Locale))
        )
        chosen_gender = gender or (
            Gender.FEMALE
            if self._rng.random() < cfg.female_fraction
            else Gender.MALE
        )
        hometown = (
            flavor.hometown
            if effective_locale is flavor.locale
            and self._rng.random() < cfg.flavor_adherence
            else self._weighted_choice(HOMETOWNS[effective_locale])
        )
        school = (
            flavor.school
            if effective_locale is flavor.locale
            and self._rng.random() < cfg.flavor_adherence
            else self._weighted_choice(SCHOOLS[effective_locale])
        )

        raw_attributes: dict[ProfileAttribute, str] = {
            ProfileAttribute.GENDER: chosen_gender.value,
            ProfileAttribute.LOCALE: effective_locale.value,
            ProfileAttribute.LAST_NAME: self._weighted_choice(
                LAST_NAMES[effective_locale]
            ),
            ProfileAttribute.HOMETOWN: hometown,
            ProfileAttribute.EDUCATION: school,
            ProfileAttribute.WORK: self._weighted_choice(
                EMPLOYERS[effective_locale]
            ),
            ProfileAttribute.LOCATION: hometown,
        }
        attributes = {
            attribute: value
            for attribute, value in raw_attributes.items()
            if self._rng.random() < cfg.fill_rates.get(attribute, 1.0)
        }
        privacy = self._visibility.sample_privacy(chosen_gender, effective_locale)
        return Profile(user_id=user_id, attributes=attributes, privacy=privacy)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _weighted_choice(self, pool: tuple[str, ...]) -> str:
        weights = zipf_weights(len(pool))
        return self._rng.choices(pool, weights=weights, k=1)[0]
