"""Locale-aware categorical value pools for the profile generator.

Last names, hometowns, schools and employers per locale.  The pools are
deliberately Zipf-ish in use (the generator draws with decaying weights) so
that value-frequency effects — the mismatch term of ``PS()``, Squeezer
supports, information gain ratios — have realistic skew to work with.
"""

from __future__ import annotations

from ..types import Locale

#: Common last names per locale.  Order matters: the generator draws with
#: weights decaying by rank, so earlier names are more frequent.
LAST_NAMES: dict[Locale, tuple[str, ...]] = {
    Locale.TR: (
        "yilmaz", "kaya", "demir", "celik", "sahin", "yildiz", "ozturk",
        "aydin", "arslan", "dogan", "kilic", "aslan", "cetin", "kara",
        "koc", "kurt", "ozdemir", "simsek", "polat", "erdogan",
    ),
    Locale.DE: (
        "mueller", "schmidt", "schneider", "fischer", "weber", "meyer",
        "wagner", "becker", "schulz", "hoffmann", "koch", "bauer",
        "richter", "klein", "wolf", "schroeder", "neumann", "schwarz",
    ),
    Locale.US: (
        "smith", "johnson", "williams", "brown", "jones", "garcia",
        "miller", "davis", "rodriguez", "martinez", "hernandez", "lopez",
        "gonzalez", "wilson", "anderson", "thomas", "taylor", "moore",
    ),
    Locale.IT: (
        "rossi", "russo", "ferrari", "esposito", "bianchi", "romano",
        "colombo", "ricci", "marino", "greco", "bruno", "gallo",
        "conti", "deluca", "mancini", "costa", "giordano", "rizzo",
    ),
    Locale.GB: (
        "smith", "jones", "taylor", "brown", "williams", "wilson",
        "johnson", "davies", "robinson", "wright", "thompson", "evans",
        "walker", "white", "roberts", "green", "hall", "wood",
    ),
    Locale.ES: (
        "garcia", "gonzalez", "rodriguez", "fernandez", "lopez",
        "martinez", "sanchez", "perez", "gomez", "martin", "jimenez",
        "ruiz", "hernandez", "diaz", "moreno", "alvarez", "munoz",
    ),
    Locale.PL: (
        "nowak", "kowalski", "wisniewski", "wojcik", "kowalczyk",
        "kaminski", "lewandowski", "zielinski", "szymanski", "wozniak",
        "dabrowski", "kozlowski", "jankowski", "mazur", "krawczyk",
    ),
    Locale.IN: (
        "sharma", "verma", "gupta", "singh", "kumar", "patel", "mehta",
        "reddy", "nair", "iyer", "das", "joshi", "shah", "rao",
    ),
}

#: Hometowns per locale, again most-common first.
HOMETOWNS: dict[Locale, tuple[str, ...]] = {
    Locale.TR: (
        "istanbul", "ankara", "izmir", "bursa", "antalya", "adana",
        "konya", "gaziantep", "trabzon", "eskisehir",
    ),
    Locale.DE: (
        "berlin", "hamburg", "munich", "cologne", "frankfurt",
        "stuttgart", "dusseldorf", "leipzig", "dresden",
    ),
    Locale.US: (
        "new york", "los angeles", "chicago", "houston", "phoenix",
        "philadelphia", "san antonio", "san diego", "dallas", "austin",
    ),
    Locale.IT: (
        "rome", "milan", "naples", "turin", "palermo", "genoa",
        "bologna", "florence", "varese", "verona",
    ),
    Locale.GB: (
        "london", "birmingham", "manchester", "glasgow", "liverpool",
        "leeds", "sheffield", "edinburgh", "bristol",
    ),
    Locale.ES: (
        "madrid", "barcelona", "valencia", "seville", "zaragoza",
        "malaga", "murcia", "bilbao", "granada",
    ),
    Locale.PL: (
        "warsaw", "krakow", "lodz", "wroclaw", "poznan", "gdansk",
        "szczecin", "lublin", "katowice",
    ),
    Locale.IN: (
        "mumbai", "delhi", "bangalore", "hyderabad", "chennai",
        "kolkata", "pune", "ahmedabad",
    ),
}

#: Education institutions per locale.
SCHOOLS: dict[Locale, tuple[str, ...]] = {
    Locale.TR: (
        "bogazici university", "itu", "metu", "bilkent", "ege university",
        "hacettepe", "ankara university",
    ),
    Locale.DE: (
        "tu munich", "heidelberg", "humboldt", "rwth aachen",
        "tu berlin", "lmu munich",
    ),
    Locale.US: (
        "state university", "community college", "uc berkeley", "mit",
        "university of texas", "nyu", "ucla",
    ),
    Locale.IT: (
        "university of insubria", "politecnico di milano", "sapienza",
        "university of bologna", "university of padua", "bocconi",
    ),
    Locale.GB: (
        "university of manchester", "ucl", "oxford", "cambridge",
        "university of edinburgh", "kings college",
    ),
    Locale.ES: (
        "complutense", "university of barcelona", "upm",
        "university of valencia", "university of seville",
    ),
    Locale.PL: (
        "university of warsaw", "jagiellonian", "warsaw tech",
        "adam mickiewicz", "wroclaw tech",
    ),
    Locale.IN: (
        "iit bombay", "iit delhi", "university of delhi", "anna university",
        "bits pilani",
    ),
}

#: Employers per locale (generic categories keep the pools comparable).
EMPLOYERS: dict[Locale, tuple[str, ...]] = {
    locale: (
        "student", "software company", "bank", "retail", "university",
        "hospital", "government", "self-employed", "media", "telecom",
    )
    for locale in Locale
}


def zipf_weights(count: int, exponent: float = 1.0) -> list[float]:
    """Rank-based Zipf weights for drawing from an ordered value pool."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return [1.0 / (rank ** exponent) for rank in range(1, count + 1)]
