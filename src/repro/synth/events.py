"""Interaction-event streams: the raw material of the Sight crawl.

The paper's app could not query the graph directly: "we listen owner
profile to see friends' interactions (e.g., tagging, posting) and, once a
friend of friend is found, we query Facebook for its mutual
friends/proﬁle information" (Section IV-A).

This module generates that observable layer explicitly: a stream of
:class:`InteractionEvent` records (posts, tags, comments) between friends
and their contacts, from which :func:`crawl_from_events` derives stranger
discovery — a more faithful Sight simulation than rate-based thinning,
and a substrate for interaction-level experiments.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterable

from ..graph.ego import EgoNetwork
from ..types import UserId
from .crawler import CrawlSimulation, DiscoveryEvent


class InteractionKind(enum.Enum):
    """The observable interaction types Sight listened for."""

    POST = "post"
    TAG = "tag"
    COMMENT = "comment"


#: Relative frequency of each interaction kind (posts dominate feeds).
_KIND_WEIGHTS = {
    InteractionKind.POST: 0.5,
    InteractionKind.COMMENT: 0.35,
    InteractionKind.TAG: 0.15,
}


@dataclass(frozen=True)
class InteractionEvent:
    """One observed interaction between a friend and a contact.

    ``actor`` is always one of the owner's friends (only their activity
    is visible to the listener); ``target`` is whoever they interacted
    with — possibly a stranger, possibly another friend.
    """

    day: int
    kind: InteractionKind
    actor: UserId
    target: UserId


def generate_event_stream(
    ego: EgoNetwork,
    days: int,
    interactions_per_friend_per_day: float = 0.4,
    rng: random.Random | None = None,
) -> list[InteractionEvent]:
    """Simulate the interactions visible from the owner's feed.

    Each day every friend produces a small random number of interactions
    with uniformly chosen contacts (their own friends).  Interactions
    with the owner are skipped — they reveal nothing new.
    """
    rng = rng or random.Random()
    graph = ego.graph
    kinds = list(_KIND_WEIGHTS)
    weights = [_KIND_WEIGHTS[kind] for kind in kinds]
    events: list[InteractionEvent] = []
    friends = sorted(ego.friends)
    contacts = {
        friend: sorted(graph.friends(friend) - {ego.owner})
        for friend in friends
    }
    for day in range(1, days + 1):
        for friend in friends:
            pool = contacts[friend]
            if not pool:
                continue
            expected = interactions_per_friend_per_day
            while expected > 0:
                if rng.random() < min(expected, 1.0):
                    events.append(
                        InteractionEvent(
                            day=day,
                            kind=rng.choices(kinds, weights=weights, k=1)[0],
                            actor=friend,
                            target=rng.choice(pool),
                        )
                    )
                expected -= 1.0
    return events


def crawl_from_events(
    ego: EgoNetwork,
    events: Iterable[InteractionEvent],
    days: int,
) -> CrawlSimulation:
    """Derive the Sight crawl from an interaction stream.

    A stranger is *discovered* the first time they appear as the target
    of a visible interaction.  Events targeting friends (or users outside
    the 2-hop set) reveal nothing and are skipped — exactly the filter
    the real app applied before querying the API.
    """
    discovered: set[UserId] = set()
    discoveries: list[DiscoveryEvent] = []
    for event in sorted(events, key=lambda e: e.day):
        if event.target in discovered:
            continue
        if not ego.is_stranger(event.target):
            continue
        discovered.add(event.target)
        discoveries.append(
            DiscoveryEvent(
                day=event.day,
                stranger=event.target,
                via_friend=event.actor,
            )
        )
    return CrawlSimulation(
        owner=ego.owner,
        events=tuple(discoveries),
        days=days,
        total_strangers=len(ego.strangers),
    )
