"""Study population: the synthetic counterpart of the paper's 47 owners.

Section IV-A describes the cohort: 47 Facebook users (32 male, 15 female,
aged 18-35; 17 from Turkey, 5 from Italy, 9 from the USA, 1 from India,
7 from Poland — the rest unreported), 172,091 stranger profiles, 4,013
labels, on average 3,661 strangers and 86 labels per owner.

:func:`generate_study_population` builds a cohort with those demographic
quotas (scaled to the requested owner count) and configurable ego-network
sizes.  The default stranger count per owner is far below 3,661 to keep
test runs quick; the benchmark harness scales it up.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import ConfigError
from ..graph.social_graph import SocialGraph
from ..graph.visibility import stranger_visibility_vector
from ..similarity.network import NetworkSimilarity
from ..types import Gender, Locale, ProfileAttribute, UserId
from .graphs import EgoNetConfig, EgoNetHandle, generate_ego_network
from .owners import (
    SimulatedOwner,
    sample_archetype_attitude,
    sample_confidence,
    sample_thetas,
)
from .profiles import ProfileGenerator, ProfileGeneratorConfig

#: Owner locale quotas from Section IV-A (TR 17, IT 5, US 9, IN 1, PL 7 of
#: 47; the unreported 8 are spread over the remaining Table V locales so
#: every locale row has data).
_LOCALE_QUOTAS: tuple[tuple[Locale, int], ...] = (
    (Locale.TR, 17),
    (Locale.US, 9),
    (Locale.PL, 7),
    (Locale.IT, 5),
    (Locale.DE, 3),
    (Locale.GB, 3),
    (Locale.ES, 2),
    (Locale.IN, 1),
)

#: Gender quota: 32 male / 15 female of 47.
_MALE_FRACTION = 32 / 47


@dataclass(frozen=True)
class StudyConfig:
    """Cohort shape.

    ``num_owners`` defaults to the paper's 47; ``ego`` controls each
    owner's network size.  Ego networks are generated disjoint (one
    component per owner): the pipeline treats owners independently, so a
    shared world would add cost without changing any measured quantity.
    """

    num_owners: int = 47
    ego: EgoNetConfig = field(default_factory=EgoNetConfig)
    profiles: ProfileGeneratorConfig = field(default_factory=ProfileGeneratorConfig)
    seed: int = 0
    #: Ego-network generator: "communities" (default, the paper-shaped
    #: model) or a key of :data:`repro.synth.topologies.TOPOLOGIES`.
    topology: str = "communities"
    #: Risk-attitude family of the cohort (see
    #: :data:`repro.synth.owners.ARCHETYPES`).
    archetype: str = "balanced"

    def __post_init__(self) -> None:
        if self.num_owners < 1:
            raise ConfigError("num_owners must be >= 1")
        from .owners import ARCHETYPES
        from .topologies import TOPOLOGIES

        if self.topology != "communities" and self.topology not in TOPOLOGIES:
            raise ConfigError(
                f"unknown topology {self.topology!r}; expected 'communities' "
                f"or one of {sorted(TOPOLOGIES)}"
            )
        if self.archetype not in ARCHETYPES:
            raise ConfigError(
                f"unknown archetype {self.archetype!r}; expected one of "
                f"{ARCHETYPES}"
            )


@dataclass
class StudyPopulation:
    """A generated cohort: one graph, many instrumented owners."""

    graph: SocialGraph
    owners: tuple[SimulatedOwner, ...]
    handles: dict[UserId, EgoNetHandle]
    config: StudyConfig

    def owner_by_id(self, user_id: UserId) -> SimulatedOwner:
        """Look an owner up by id."""
        for owner in self.owners:
            if owner.user_id == user_id:
                return owner
        raise KeyError(f"no owner with id {user_id}")

    def strangers_of(self, user_id: UserId) -> tuple[UserId, ...]:
        """The generated stranger ids of one owner."""
        return self.handles[user_id].strangers

    @property
    def total_strangers(self) -> int:
        """Stranger profiles across the cohort (paper: 172,091)."""
        return sum(len(handle.strangers) for handle in self.handles.values())


def owner_demographics(num_owners: int) -> list[tuple[Gender, Locale]]:
    """Deterministic (gender, locale) assignments honoring the quotas."""
    total_quota = sum(count for _, count in _LOCALE_QUOTAS)
    locales: list[Locale] = []
    for locale, count in _LOCALE_QUOTAS:
        scaled = round(count * num_owners / total_quota)
        locales.extend([locale] * scaled)
    # rounding drift: pad with the most common locale, trim from the end
    while len(locales) < num_owners:
        locales.append(_LOCALE_QUOTAS[0][0])
    locales = locales[:num_owners]

    num_males = round(num_owners * _MALE_FRACTION)
    genders = [Gender.MALE] * num_males + [Gender.FEMALE] * (
        num_owners - num_males
    )
    # interleave deterministically so genders spread across locales
    assignments = []
    for index in range(num_owners):
        assignments.append((genders[index], locales[index]))
    return assignments


def generate_study_population(
    num_owners: int = 47,
    ego_config: EgoNetConfig | None = None,
    profile_config: ProfileGeneratorConfig | None = None,
    seed: int = 0,
    topology: str = "communities",
    archetype: str = "balanced",
) -> StudyPopulation:
    """Generate the full synthetic cohort.

    Every owner gets: a demographic slot, a profile, a disjoint ego
    network, a sampled risk attitude, theta weights, a stopping
    confidence, and ground-truth labels for all their strangers (the
    attitude applied to each stranger's profile, network similarity and
    visibility, plus noise).

    ``topology`` selects the ego-network generator: the default
    community model, or one of the alternatives in
    :mod:`repro.synth.topologies` (robustness experiments).
    """
    config = StudyConfig(
        num_owners=num_owners,
        ego=ego_config or EgoNetConfig(),
        profiles=profile_config or ProfileGeneratorConfig(),
        seed=seed,
        topology=topology,
        archetype=archetype,
    )
    if topology == "communities":
        ego_generator = generate_ego_network
    else:
        from .topologies import TOPOLOGIES

        ego_generator = TOPOLOGIES[topology]
    rng = random.Random(seed)
    graph = SocialGraph()
    generator = ProfileGenerator(rng, config.profiles)
    ns_measure = NetworkSimilarity()

    owners: list[SimulatedOwner] = []
    handles: dict[UserId, EgoNetHandle] = {}
    next_id = 1
    for gender, locale in owner_demographics(num_owners):
        owner_id = next_id
        next_id += 1
        flavor = generator.sample_flavor(locale)
        profile = generator.sample_profile(owner_id, flavor, gender=gender)
        graph.add_user(profile)

        handle = ego_generator(
            graph,
            owner_id,
            rng,
            generator,
            config=config.ego,
            next_id=next_id,
            owner_locale=locale,
        )
        next_id = max(graph.users()) + 1
        handles[owner_id] = handle

        attitude = sample_archetype_attitude(
            config.archetype,
            rng,
            owner_locale=locale,
            owner_last_name=profile.attribute(ProfileAttribute.LAST_NAME),
        )
        ground_truth = {}
        for stranger in handle.strangers:
            similarity = ns_measure(graph, owner_id, stranger)
            visibility = stranger_visibility_vector(graph, owner_id, stranger)
            ground_truth[stranger] = attitude.judge(
                graph.profile(stranger), similarity, visibility, rng
            )
        owners.append(
            SimulatedOwner(
                user_id=owner_id,
                profile=profile,
                attitude=attitude,
                thetas=sample_thetas(rng),
                confidence=sample_confidence(rng),
                ground_truth=ground_truth,
            )
        )
    return StudyPopulation(
        graph=graph,
        owners=tuple(owners),
        handles=handles,
        config=config,
    )
