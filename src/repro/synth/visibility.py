"""Privacy-setting sampling calibrated to the paper's Tables IV and V.

Tables IV and V report, per benefit item, the fraction of strangers whose
item is visible to a friend-of-friend, broken down by gender and locale.
The sampler turns those observed marginals into a generative model:

* Table V supplies the per-(locale, item) base visibility probability;
* Table IV supplies a per-(gender, item) multiplier — the ratio between
  that gender's visibility and the gender-average — capturing the paper's
  (and Fogel & Nehmad's) finding that "females have stricter privacy
  settings than males", with photos the notable exception;
* a sampled "visible" outcome becomes ``PUBLIC`` or
  ``FRIENDS_OF_FRIENDS``; "hidden" becomes ``FRIENDS`` or ``PRIVATE``.

The experiment harness then *re-derives* Tables IV/V from generated
profiles through the actual analysis code — so what the benchmarks print
is measured, not echoed.
"""

from __future__ import annotations

import random

from ..types import BenefitItem, Gender, Locale, VisibilityLevel

#: Table V of the paper: visibility (probability) of each item for
#: strangers of each locale.
TABLE5_VISIBILITY: dict[Locale, dict[BenefitItem, float]] = {
    Locale.TR: {
        BenefitItem.WALL: 0.20, BenefitItem.PHOTO: 0.84,
        BenefitItem.FRIEND: 0.41, BenefitItem.LOCATION: 0.36,
        BenefitItem.EDUCATION: 0.31, BenefitItem.WORK: 0.15,
        BenefitItem.HOMETOWN: 0.32,
    },
    Locale.DE: {
        BenefitItem.WALL: 0.20, BenefitItem.PHOTO: 0.77,
        BenefitItem.FRIEND: 0.46, BenefitItem.LOCATION: 0.34,
        BenefitItem.EDUCATION: 0.17, BenefitItem.WORK: 0.17,
        BenefitItem.HOMETOWN: 0.34,
    },
    Locale.US: {
        BenefitItem.WALL: 0.17, BenefitItem.PHOTO: 0.89,
        BenefitItem.FRIEND: 0.52, BenefitItem.LOCATION: 0.42,
        BenefitItem.EDUCATION: 0.34, BenefitItem.WORK: 0.18,
        BenefitItem.HOMETOWN: 0.37,
    },
    Locale.IT: {
        BenefitItem.WALL: 0.27, BenefitItem.PHOTO: 0.92,
        BenefitItem.FRIEND: 0.68, BenefitItem.LOCATION: 0.32,
        BenefitItem.EDUCATION: 0.38, BenefitItem.WORK: 0.14,
        BenefitItem.HOMETOWN: 0.41,
    },
    Locale.GB: {
        BenefitItem.WALL: 0.12, BenefitItem.PHOTO: 0.91,
        BenefitItem.FRIEND: 0.46, BenefitItem.LOCATION: 0.38,
        BenefitItem.EDUCATION: 0.25, BenefitItem.WORK: 0.17,
        BenefitItem.HOMETOWN: 0.32,
    },
    Locale.ES: {
        BenefitItem.WALL: 0.22, BenefitItem.PHOTO: 0.87,
        BenefitItem.FRIEND: 0.63, BenefitItem.LOCATION: 0.37,
        BenefitItem.EDUCATION: 0.28, BenefitItem.WORK: 0.13,
        BenefitItem.HOMETOWN: 0.37,
    },
    Locale.PL: {
        BenefitItem.WALL: 0.31, BenefitItem.PHOTO: 0.95,
        BenefitItem.FRIEND: 0.72, BenefitItem.LOCATION: 0.33,
        BenefitItem.EDUCATION: 0.23, BenefitItem.WORK: 0.13,
        BenefitItem.HOMETOWN: 0.31,
    },
}

#: Table IV of the paper: visibility by stranger gender.
TABLE4_VISIBILITY: dict[Gender, dict[BenefitItem, float]] = {
    Gender.MALE: {
        BenefitItem.WALL: 0.25, BenefitItem.PHOTO: 0.88,
        BenefitItem.FRIEND: 0.56, BenefitItem.LOCATION: 0.42,
        BenefitItem.EDUCATION: 0.35, BenefitItem.WORK: 0.20,
        BenefitItem.HOMETOWN: 0.41,
    },
    Gender.FEMALE: {
        BenefitItem.WALL: 0.16, BenefitItem.PHOTO: 0.87,
        BenefitItem.FRIEND: 0.47, BenefitItem.LOCATION: 0.32,
        BenefitItem.EDUCATION: 0.28, BenefitItem.WORK: 0.12,
        BenefitItem.HOMETOWN: 0.30,
    },
}

#: Locales not covered by Table V fall back to the table average.
_FALLBACK_VISIBILITY: dict[BenefitItem, float] = {
    item: sum(row[item] for row in TABLE5_VISIBILITY.values())
    / len(TABLE5_VISIBILITY)
    for item in BenefitItem
}

#: Of the items visible at distance 2, this fraction is fully PUBLIC (the
#: rest are friends-of-friends); of the hidden items, this fraction is
#: friends-only (the rest fully private).  These splits do not affect the
#: reproduced tables — only distance-2 visibility does — but make the
#: generated settings richer for the examples.
_PUBLIC_SHARE = 0.35
_FRIENDS_SHARE = 0.6


class VisibilitySampler:
    """Samples a full privacy-setting vector for one profile."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def visibility_probability(
        self, item: BenefitItem, gender: Gender, locale: Locale
    ) -> float:
        """P(item visible at distance 2) for a (gender, locale) profile.

        The locale base rate is multiplied by the gender ratio implied by
        Table IV and clipped into [0.01, 0.99] so both marginals are
        approximately honored simultaneously.
        """
        base = TABLE5_VISIBILITY.get(locale, _FALLBACK_VISIBILITY)[item]
        gender_mean = (
            TABLE4_VISIBILITY[Gender.MALE][item]
            + TABLE4_VISIBILITY[Gender.FEMALE][item]
        ) / 2.0
        ratio = TABLE4_VISIBILITY[gender][item] / gender_mean
        return min(0.99, max(0.01, base * ratio))

    def sample_privacy(
        self, gender: Gender, locale: Locale
    ) -> dict[BenefitItem, VisibilityLevel]:
        """One privacy vector, item by item."""
        privacy: dict[BenefitItem, VisibilityLevel] = {}
        for item in BenefitItem:
            probability = self.visibility_probability(item, gender, locale)
            if self._rng.random() < probability:
                privacy[item] = (
                    VisibilityLevel.PUBLIC
                    if self._rng.random() < _PUBLIC_SHARE
                    else VisibilityLevel.FRIENDS_OF_FRIENDS
                )
            else:
                privacy[item] = (
                    VisibilityLevel.FRIENDS
                    if self._rng.random() < _FRIENDS_SHARE
                    else VisibilityLevel.PRIVATE
                )
        return privacy
