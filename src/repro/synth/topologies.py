"""Alternative ego-network topologies (extension, Section VI outlook).

The paper plans "to extend our tests ... to data sets coming from
different social networks".  Different OSNs have differently shaped
friend neighborhoods, so this module provides two generators beyond the
default community model of :mod:`~repro.synth.graphs`:

* :func:`generate_small_world_ego` — the friend set is a Watts-Strogatz
  ring (high clustering, short paths): a "village" network where
  everybody's friends know each other;
* :func:`generate_preferential_ego` — strangers attach to friends by
  preferential attachment (Barabási-Albert flavor): a "hub" network where
  a few popular friends mediate most 2-hop contacts.

Both produce the same :class:`~repro.synth.graphs.EgoNetHandle` as the
default generator, so the whole pipeline — and the robustness benchmark
(E15) — runs unchanged on top of them.
"""

from __future__ import annotations

import random

from ..graph.social_graph import SocialGraph
from ..types import Locale, UserId
from .graphs import EgoNetConfig, EgoNetHandle, sample_mutual_friend_count
from .profiles import ProfileGenerator


def _add_friends(
    graph: SocialGraph,
    owner: UserId,
    rng: random.Random,
    profiles: ProfileGenerator,
    config: EgoNetConfig,
    next_id: int,
    locale: Locale,
) -> tuple[list[UserId], int]:
    flavor = profiles.sample_flavor(locale)
    friends: list[UserId] = []
    for _ in range(config.num_friends):
        graph.add_user(profiles.sample_profile(next_id, flavor))
        graph.add_friendship(owner, next_id)
        friends.append(next_id)
        next_id += 1
    return friends, next_id


def _add_strangers(
    graph: SocialGraph,
    rng: random.Random,
    profiles: ProfileGenerator,
    config: EgoNetConfig,
    next_id: int,
    locale: Locale,
    anchor_chooser,
) -> tuple[list[UserId], int]:
    flavor = profiles.sample_flavor(locale)
    strangers: list[UserId] = []
    for _ in range(config.num_strangers):
        anchors = anchor_chooser(rng)
        graph.add_user(profiles.sample_profile(next_id, flavor))
        for anchor in anchors:
            graph.add_friendship(next_id, anchor)
        strangers.append(next_id)
        next_id += 1
    return strangers, next_id


def generate_small_world_ego(
    graph: SocialGraph,
    owner: UserId,
    rng: random.Random,
    profiles: ProfileGenerator,
    config: EgoNetConfig | None = None,
    next_id: int | None = None,
    owner_locale: Locale | None = None,
) -> EgoNetHandle:
    """Watts-Strogatz-style ego network.

    Friends form a ring lattice (each connected to ``k`` neighbors on
    each side) with a small rewiring probability; strangers attach to a
    contiguous arc of the ring, so their mutual friends are themselves
    tightly interconnected — the high-cohesion end of the ``NS()``
    measure's range.
    """
    cfg = config or EgoNetConfig()
    if next_id is None:
        next_id = max(graph.users(), default=0) + 1
    locale = owner_locale or rng.choice(list(Locale))

    friends, next_id = _add_friends(
        graph, owner, rng, profiles, cfg, next_id, locale
    )
    ring = len(friends)
    k = max(1, round(cfg.friend_density * 6))
    rewire = 0.1
    for position, friend in enumerate(friends):
        for offset in range(1, k + 1):
            neighbor = friends[(position + offset) % ring]
            if friend == neighbor:
                continue
            if rng.random() < rewire:
                neighbor = rng.choice(friends)
                if neighbor == friend:
                    continue
            graph.add_friendship(friend, neighbor)

    def arc_anchors(chooser_rng: random.Random) -> list[UserId]:
        count = sample_mutual_friend_count(chooser_rng, ring)
        start = chooser_rng.randrange(ring)
        return [friends[(start + step) % ring] for step in range(count)]

    strangers, next_id = _add_strangers(
        graph, rng, profiles, cfg, next_id, locale, arc_anchors
    )
    return EgoNetHandle(
        owner=owner,
        friends=tuple(friends),
        strangers=tuple(strangers),
        communities=(tuple(friends),),
    )


def generate_preferential_ego(
    graph: SocialGraph,
    owner: UserId,
    rng: random.Random,
    profiles: ProfileGenerator,
    config: EgoNetConfig | None = None,
    next_id: int | None = None,
    owner_locale: Locale | None = None,
) -> EgoNetHandle:
    """Preferential-attachment ego network.

    Friend-friend edges and stranger anchors are both drawn proportional
    to current degree, concentrating 2-hop connectivity on a few hub
    friends — the low-cohesion, high-count end of ``NS()``'s behaviour.
    """
    cfg = config or EgoNetConfig()
    if next_id is None:
        next_id = max(graph.users(), default=0) + 1
    locale = owner_locale or rng.choice(list(Locale))

    friends, next_id = _add_friends(
        graph, owner, rng, profiles, cfg, next_id, locale
    )
    # degree-proportional friend-friend wiring
    target_edges = round(
        cfg.friend_density * len(friends) * (len(friends) - 1) / 4
    )
    weights = {friend: 1 for friend in friends}
    for _ in range(target_edges):
        a = rng.choices(friends, weights=[weights[f] for f in friends])[0]
        b = rng.choices(friends, weights=[weights[f] for f in friends])[0]
        if a == b:
            continue
        graph.add_friendship(a, b)
        weights[a] += 1
        weights[b] += 1

    def hub_anchors(chooser_rng: random.Random) -> list[UserId]:
        count = sample_mutual_friend_count(chooser_rng, len(friends))
        chosen: set[UserId] = set()
        while len(chosen) < count:
            chosen.add(
                chooser_rng.choices(
                    friends, weights=[weights[f] for f in friends]
                )[0]
            )
        return sorted(chosen)

    strangers, next_id = _add_strangers(
        graph, rng, profiles, cfg, next_id, locale, hub_anchors
    )
    return EgoNetHandle(
        owner=owner,
        friends=tuple(friends),
        strangers=tuple(strangers),
        communities=(tuple(friends),),
    )


#: Registry of ego-network generators by topology name; the default
#: community model lives in :mod:`~repro.synth.graphs`.
TOPOLOGIES = {
    "small_world": generate_small_world_ego,
    "preferential": generate_preferential_ego,
}
