"""Simulation of the Sight crawler's progressive stranger discovery.

The paper's Facebook app could not fetch the social graph at once: it
listened for friend interactions (tags, posts) and queried mutual friends
when a friend-of-friend surfaced.  "The time period to learn a big portion
of the social graph (4,000 strangers) can take up to 1 week"; the full
2-month deployment discovered ~30,000 strangers.

The simulator models discovery as interaction-driven sampling: each day
every friend produces a Poisson-ish number of interactions, each of which
reveals a random not-yet-seen stranger attached to that friend.  The
resulting curve is saturating — fast at first, slow in the tail — which is
what makes the paper's design point ("the user can start to label and
learn about the risk since the first day") matter: learning must work on
a *prefix* of the stranger set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property

from ..graph.ego import EgoNetwork
from ..types import UserId


@dataclass(frozen=True)
class DiscoveryEvent:
    """One stranger surfacing on a given day."""

    day: int
    stranger: UserId
    via_friend: UserId


@dataclass(frozen=True)
class CrawlSimulation:
    """The full discovery timeline of one owner's crawl."""

    owner: UserId
    events: tuple[DiscoveryEvent, ...]
    days: int
    total_strangers: int

    @cached_property
    def _cumulative_by_day(self) -> tuple[frozenset[UserId], ...]:
        """Index ``d`` holds the strangers known at the end of day ``d``.

        Built once per simulation (the event list is immutable), turning
        the per-day queries below into O(1) lookups — longitudinal
        analyses call them for every day of a two-month crawl.
        """
        per_day: list[list[UserId]] = [[] for _ in range(self.days + 1)]
        for event in self.events:
            per_day[event.day].append(event.stranger)
        cumulative: list[frozenset[UserId]] = []
        running: set[UserId] = set()
        for day_events in per_day:
            running.update(day_events)
            cumulative.append(frozenset(running))
        return tuple(cumulative)

    def discovered_by(self, day: int) -> frozenset[UserId]:
        """Strangers known at the end of ``day`` (O(1) after first use)."""
        if day < 0:
            return self._cumulative_by_day[0]
        return self._cumulative_by_day[min(day, self.days)]

    def discovery_curve(self) -> list[int]:
        """Cumulative strangers discovered per day (index 0 = day 1)."""
        return [
            len(known) for known in self._cumulative_by_day[1:]
        ]

    @property
    def coverage(self) -> float:
        """Fraction of the stranger set discovered by the end."""
        if self.total_strangers == 0:
            return 1.0
        return len(self.discovered_by(self.days)) / self.total_strangers


def simulate_sight_crawl(
    ego: EgoNetwork,
    days: int = 56,
    interactions_per_friend_per_day: float = 0.4,
    rng: random.Random | None = None,
) -> CrawlSimulation:
    """Simulate the Sight crawl over one ego network.

    Parameters
    ----------
    ego:
        The owner's ego network (the ground-truth stranger set).
    days:
        Crawl duration (the paper's deployment ran ~2 months).
    interactions_per_friend_per_day:
        Expected interactions observed per friend per day; each
        interaction reveals one undiscovered stranger adjacent to that
        friend, if any remain.
    rng:
        Randomness source.
    """
    rng = rng or random.Random()
    graph = ego.graph
    undiscovered_by_friend: dict[UserId, set[UserId]] = {}
    for friend in ego.friends:
        adjacent_strangers = graph.friends(friend) & ego.strangers
        if adjacent_strangers:
            undiscovered_by_friend[friend] = set(adjacent_strangers)

    discovered: set[UserId] = set()
    events: list[DiscoveryEvent] = []
    friends = sorted(undiscovered_by_friend)
    for day in range(1, days + 1):
        for friend in friends:
            remaining = undiscovered_by_friend.get(friend)
            if not remaining:
                continue
            # Bernoulli-thinned interaction count for this friend today.
            interactions = 0
            expected = interactions_per_friend_per_day
            while expected > 0:
                if rng.random() < min(expected, 1.0):
                    interactions += 1
                expected -= 1.0
            for _ in range(interactions):
                fresh = remaining - discovered
                if not fresh:
                    break
                stranger = rng.choice(sorted(fresh))
                discovered.add(stranger)
                events.append(
                    DiscoveryEvent(day=day, stranger=stranger, via_friend=friend)
                )
    return CrawlSimulation(
        owner=ego.owner,
        events=tuple(events),
        days=days,
        total_strangers=len(ego.strangers),
    )
