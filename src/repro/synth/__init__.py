"""Synthetic OSN substrate — the stand-in for the paper's Facebook data.

The paper's evaluation ran a Facebook application ("Sight") over 47 real
owners, 172,091 stranger profiles and 4,013 owner labels.  That data is
not available (and would not be shareable), so this package generates a
population with the same *published marginals*:

* owner demographics of Section IV-A (32 male / 15 female; locales
  TR/IT/US/IN/PL);
* per-item visibility rates by gender and locale calibrated to Tables IV
  and V;
* a heavily skewed network-similarity distribution (Figure 4);
* per-owner ground-truth *risk attitudes* whose structure mirrors what the
  paper mines (gender the dominant attribute, Table I; homophily: higher
  network similarity ⇒ lower risk, Figure 7).

Crucially the attitudes are *planted*, so the experiments must recover
them through the actual pipeline — the reproduction tests the algorithms,
not the generator.
"""

from .crawler import CrawlSimulation, simulate_sight_crawl
from .events import InteractionEvent, InteractionKind, crawl_from_events, generate_event_stream
from .graphs import EgoNetConfig, generate_ego_network
from .owners import RiskAttitude, SimulatedOwner
from .population import StudyConfig, StudyPopulation, generate_study_population
from .profiles import ProfileGenerator, ProfileGeneratorConfig
from .topologies import TOPOLOGIES, generate_preferential_ego, generate_small_world_ego
from .visibility import VisibilitySampler

__all__ = [
    "CrawlSimulation",
    "EgoNetConfig",
    "InteractionEvent",
    "InteractionKind",
    "crawl_from_events",
    "generate_event_stream",
    "ProfileGenerator",
    "ProfileGeneratorConfig",
    "RiskAttitude",
    "SimulatedOwner",
    "StudyConfig",
    "StudyPopulation",
    "TOPOLOGIES",
    "VisibilitySampler",
    "generate_ego_network",
    "generate_preferential_ego",
    "generate_small_world_ego",
    "generate_study_population",
    "simulate_sight_crawl",
]
