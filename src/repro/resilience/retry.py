"""Retry with exponential backoff and deterministic, seeded jitter.

The paper's Sight deployment ran for two months against a flaky OSN:
profile fetches time out, the API rate-limits, the human oracle walks away
from the keyboard.  :class:`RetryPolicy` encodes how patiently to retry.
Two properties matter for a reproducible research harness:

* **determinism** — the jittered backoff schedule is a pure function of
  the policy (seeded), so the same run always waits the same way and
  property tests can assert the schedule exactly;
* **injectable time** — callers supply the sleeper (and, elsewhere, the
  clock), so the test suite exercises multi-minute backoff schedules in
  microseconds.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, TypeVar

if TYPE_CHECKING:  # pragma: no cover
    from .breaker import CircuitBreaker, Deadline

from ..errors import (
    ConfigError,
    OracleTimeoutError,
    RetryExhaustedError,
    TransientFetchError,
)

T = TypeVar("T")

#: Seconds-returning monotonic clock; injectable for tests.
Clock = Callable[[], float]

#: Blocking sleep; injectable for tests.
Sleeper = Callable[[float], None]


def no_sleep(_: float) -> None:
    """A sleeper that does not sleep — for simulations and tests."""


#: Exception types retried by default: the transient half of the error
#: hierarchy.  Everything else (bad labels, unknown users, abstentions)
#: signals a non-transient condition that retrying cannot fix.
DEFAULT_RETRYABLE: tuple[type[Exception], ...] = (
    OracleTimeoutError,
    TransientFetchError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded full-jitter.

    Attempt ``k`` (0-based) that fails waits
    ``min(base_delay * multiplier**k, max_delay)`` scaled by a jitter
    factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.  The draws
    come from ``random.Random(seed)``, so the whole schedule is fixed by
    the policy alone: same policy, same schedule, forever.

    Parameters
    ----------
    max_attempts:
        Total tries, including the first (``1`` disables retrying).
    base_delay:
        Delay after the first failure, in seconds.
    multiplier:
        Exponential growth factor between consecutive delays.
    max_delay:
        Cap applied to the un-jittered delay.
    jitter:
        Spread fraction in ``[0, 1]``; ``0`` means no jitter.
    seed:
        Seed fixing the jitter draws.
    """

    max_attempts: int = 4
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must lie in [0, 1], got {self.jitter}")

    def schedule(self) -> tuple[float, ...]:
        """The deterministic delays between attempts.

        Returns ``max_attempts - 1`` values: the wait after attempt ``k``
        before attempt ``k + 1``.
        """
        rng = random.Random(self.seed)
        delays = []
        for attempt in range(self.max_attempts - 1):
            raw = min(self.base_delay * self.multiplier**attempt, self.max_delay)
            factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            delays.append(raw * factor)
        return tuple(delays)


def retry_call(
    operation: Callable[[], T],
    policy: RetryPolicy | None = None,
    *,
    retry_on: tuple[type[Exception], ...] = DEFAULT_RETRYABLE,
    sleeper: Sleeper = time.sleep,
    breaker: "CircuitBreaker | None" = None,
    deadline: "Deadline | None" = None,
) -> T:
    """Call ``operation`` under ``policy``, retrying transient failures.

    The optional ``breaker`` and ``deadline`` guard every attempt: an open
    circuit raises :class:`~repro.errors.CircuitOpenError` immediately
    (the breaker's verdict is not itself retried), and an expired deadline
    raises :class:`~repro.errors.DeadlineExceededError`.

    Raises
    ------
    RetryExhaustedError
        When every attempt failed with a retryable error; ``last_error``
        carries the final failure and ``attempts`` the number of tries.
    """
    policy = policy or RetryPolicy()
    delays = policy.schedule()
    last_error: Exception | None = None
    for attempt in range(policy.max_attempts):
        if deadline is not None:
            deadline.check()
        if breaker is not None:
            breaker.before_call()
        try:
            result = operation()
        except retry_on as error:
            last_error = error
            if breaker is not None:
                breaker.record_failure()
            if attempt < len(delays):
                sleeper(delays[attempt])
            continue
        except Exception:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return result
    raise RetryExhaustedError(
        f"operation failed after {policy.max_attempts} attempts: {last_error}",
        attempts=policy.max_attempts,
        last_error=last_error,
    )


__all__ = [
    "Clock",
    "DEFAULT_RETRYABLE",
    "RetryPolicy",
    "Sleeper",
    "no_sleep",
    "retry_call",
]
