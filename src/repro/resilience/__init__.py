"""Resilience layer: retry/backoff, circuit breaking, deadlines, fetching.

Long-running risk studies (the paper's deployment spanned two months)
must survive a flaky OSN and a human oracle who times out or abstains.
This package supplies the building blocks:

* :class:`RetryPolicy` / :func:`retry_call` — exponential backoff with
  deterministic seeded jitter and an injectable sleeper;
* :class:`CircuitBreaker` — stop hammering a failing dependency;
* :class:`Deadline` — wall-clock budgets with an injectable clock;
* :class:`ResilientOracle` — the composition applied to owner queries;
* :class:`ResilientFetcher` — the composition applied to profile fetches.

Fault *injection* (producing the failures these absorb) lives in the
sibling :mod:`repro.faults` package.
"""

from .breaker import CircuitBreaker, Deadline
from .fetch import FetchReport, GraphSource, ProfileSource, ResilientFetcher
from .oracle import ResilientOracle
from .retry import (
    DEFAULT_RETRYABLE,
    Clock,
    RetryPolicy,
    Sleeper,
    no_sleep,
    retry_call,
)

__all__ = [
    "CircuitBreaker",
    "Clock",
    "DEFAULT_RETRYABLE",
    "Deadline",
    "FetchReport",
    "GraphSource",
    "ProfileSource",
    "ResilientFetcher",
    "ResilientOracle",
    "RetryPolicy",
    "Sleeper",
    "no_sleep",
    "retry_call",
]
