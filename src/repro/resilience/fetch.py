"""Resilient profile fetching for the (simulated) data-source layer.

In the Sight deployment every stranger's profile had to be fetched over a
flaky API; here the "API" is the in-memory
:class:`~repro.graph.social_graph.SocialGraph`, optionally decorated by a
:class:`~repro.faults.FaultInjector`.  A :class:`ProfileSource` fetches
one profile and may fail transiently
(:class:`~repro.errors.TransientFetchError`, retried) or permanently
(:class:`~repro.errors.UnreachableUserError`, recorded).
:class:`ResilientFetcher` drives a source over a batch of users and
reports what it could and could not get, so the session degrades instead
of dying.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Protocol

from ..errors import RetryExhaustedError, TransientFetchError, UnreachableUserError
from ..graph.profile import Profile
from ..graph.social_graph import SocialGraph
from ..types import UserId
from .breaker import CircuitBreaker, Deadline
from .retry import RetryPolicy, Sleeper, retry_call


class ProfileSource(Protocol):
    """Anything that can fetch one user's profile from a graph."""

    def fetch_one(
        self, graph: SocialGraph, user_id: UserId
    ) -> Profile:  # pragma: no cover - protocol signature
        """Fetch ``user_id``'s profile, raising on failure."""
        ...


class GraphSource:
    """The trivial source: read the profile straight off the graph."""

    def fetch_one(self, graph: SocialGraph, user_id: UserId) -> Profile:
        """Fetch directly; only fails for genuinely unknown users."""
        return graph.profile(user_id)


@dataclass(frozen=True)
class FetchReport:
    """Outcome of fetching a batch of profiles.

    ``profiles`` holds everything that arrived (possibly degraded by a
    fault injector); ``unreachable`` the users whose fetches failed for
    good, after retries.
    """

    profiles: tuple[Profile, ...]
    unreachable: frozenset[UserId]

    @property
    def complete(self) -> bool:
        """Whether every requested profile arrived."""
        return not self.unreachable


class ResilientFetcher:
    """Batch fetcher with per-user retry, breaker, and deadline.

    Parameters mirror :class:`~repro.resilience.oracle.ResilientOracle`.
    """

    def __init__(
        self,
        source: ProfileSource | None = None,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        deadline: Deadline | None = None,
        sleeper: Sleeper = time.sleep,
    ) -> None:
        self._source = source or GraphSource()
        self._policy = policy or RetryPolicy()
        self._breaker = breaker
        self._deadline = deadline
        self._sleeper = sleeper

    def fetch(
        self, graph: SocialGraph, user_ids: Iterable[UserId]
    ) -> FetchReport:
        """Fetch every profile it can; report the rest as unreachable."""
        profiles: list[Profile] = []
        unreachable: set[UserId] = set()
        for user_id in user_ids:
            try:
                profile = retry_call(
                    lambda uid=user_id: self._source.fetch_one(graph, uid),
                    self._policy,
                    retry_on=(TransientFetchError,),
                    sleeper=self._sleeper,
                    breaker=self._breaker,
                    deadline=self._deadline,
                )
            except (RetryExhaustedError, UnreachableUserError):
                unreachable.add(user_id)
                continue
            profiles.append(profile)
        return FetchReport(
            profiles=tuple(profiles), unreachable=frozenset(unreachable)
        )


__all__ = ["FetchReport", "GraphSource", "ProfileSource", "ResilientFetcher"]
