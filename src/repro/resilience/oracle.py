"""Resilient wrapper around any :class:`~repro.learning.oracle.LabelOracle`.

:class:`ResilientOracle` is the composition point of the resilience layer
for owner queries: transient timeouts are retried per the
:class:`~repro.resilience.retry.RetryPolicy`, repeated failures trip the
optional :class:`~repro.resilience.breaker.CircuitBreaker`, and an
optional :class:`~repro.resilience.breaker.Deadline` bounds total wait.
Abstentions (:class:`~repro.errors.OracleAbstainError`) are *not* retried
— an owner who declined is not a broken owner — and surface either as the
exception (``label``) or as ``None`` (``label_or_abstain``).
"""

from __future__ import annotations

import time

from ..errors import OracleAbstainError, OracleTimeoutError, RetryExhaustedError
from ..types import RiskLabel
from .breaker import CircuitBreaker, Deadline
from .retry import RetryPolicy, Sleeper, retry_call


class ResilientOracle:
    """Retry / circuit-break / deadline decorator for label oracles.

    Parameters
    ----------
    inner:
        The wrapped oracle (possibly itself a fault-injecting decorator).
    policy:
        Backoff policy for transient timeouts.
    breaker:
        Optional shared circuit breaker.
    deadline:
        Optional time budget covering all queries through this wrapper.
    sleeper:
        Sleep function; inject :func:`~repro.resilience.retry.no_sleep`
        to run simulations and tests instantly.
    """

    def __init__(
        self,
        inner,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        deadline: Deadline | None = None,
        sleeper: Sleeper = time.sleep,
    ) -> None:
        self._inner = inner
        self._policy = policy or RetryPolicy()
        self._breaker = breaker
        self._deadline = deadline
        self._sleeper = sleeper

    def label(self, query) -> RiskLabel:
        """Answer one query, retrying transient oracle timeouts.

        Raises
        ------
        RetryExhaustedError
            When the oracle kept timing out; carries the stranger id and
            the attempt count.
        OracleAbstainError
            Propagated untouched — abstention is an answer, not a fault.
        """
        try:
            return retry_call(
                lambda: self._inner.label(query),
                self._policy,
                retry_on=(OracleTimeoutError,),
                sleeper=self._sleeper,
                breaker=self._breaker,
                deadline=self._deadline,
            )
        except RetryExhaustedError as error:
            raise RetryExhaustedError(
                f"oracle kept timing out for stranger {query.stranger} "
                f"({error.attempts} attempts)",
                stranger=query.stranger,
                attempts=error.attempts,
                last_error=error.last_error,
            ) from error

    def label_or_abstain(self, query) -> RiskLabel | None:
        """Like :meth:`label`, but abstention returns ``None``."""
        try:
            return self.label(query)
        except OracleAbstainError:
            return None


__all__ = ["ResilientOracle"]
