"""Circuit breaker and deadline budget for long-running studies.

A two-month deployment cannot afford to hammer a failing data source with
retries forever: after enough consecutive failures the
:class:`CircuitBreaker` *opens* and fails calls instantly, until a
recovery window has passed and a single probe call is allowed through
(*half-open*).  :class:`Deadline` bounds how long any one stage may run,
so a stalled oracle degrades the session instead of hanging it.

Both take an injectable monotonic clock so tests can move time by hand.
"""

from __future__ import annotations

import math
import time

from ..errors import CircuitOpenError, ConfigError, DeadlineExceededError
from .retry import Clock


class CircuitBreaker:
    """Classic closed / open / half-open breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (while closed) that trip the circuit.
    recovery_time:
        Seconds the circuit stays open before allowing one probe call.
    clock:
        Monotonic time source; injectable for tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        clock: Clock = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_time < 0:
            raise ConfigError(
                f"recovery_time must be non-negative, got {recovery_time}"
            )
        self._failure_threshold = failure_threshold
        self._recovery_time = recovery_time
        self._clock = clock
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """Current state: ``closed``, ``open``, or ``half_open``."""
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures seen since the last success."""
        return self._consecutive_failures

    def before_call(self) -> None:
        """Gate one call attempt.

        Raises
        ------
        CircuitOpenError
            While the circuit is open and the recovery window has not
            elapsed.  Once it has, the state moves to half-open and the
            call proceeds as the probe.
        """
        if self._state == self.OPEN:
            elapsed = self._clock() - self._opened_at
            if elapsed < self._recovery_time:
                raise CircuitOpenError(
                    f"circuit open ({self._consecutive_failures} consecutive "
                    f"failures); retry in {self._recovery_time - elapsed:.1f}s",
                    attempts=self._consecutive_failures,
                )
            self._state = self.HALF_OPEN

    def record_success(self) -> None:
        """A call succeeded: close the circuit and reset the count."""
        self._state = self.CLOSED
        self._consecutive_failures = 0

    def record_failure(self) -> None:
        """A call failed: count it, tripping the circuit when warranted.

        A failed half-open probe re-opens immediately; a closed circuit
        opens once ``failure_threshold`` consecutive failures accumulate.
        """
        self._consecutive_failures += 1
        if (
            self._state == self.HALF_OPEN
            or self._consecutive_failures >= self._failure_threshold
        ):
            self._state = self.OPEN
            self._opened_at = self._clock()

    def snapshot(self) -> dict[str, object]:
        """JSON-ready view of the breaker for health/metrics endpoints."""
        return {
            "state": self._state,
            "consecutive_failures": self._consecutive_failures,
            "failure_threshold": self._failure_threshold,
            "recovery_time": self._recovery_time,
        }


class Deadline:
    """A wall-clock budget for one stage of work.

    Parameters
    ----------
    budget:
        Seconds available from construction time (``math.inf`` for none).
    clock:
        Monotonic time source; injectable for tests.
    """

    def __init__(self, budget: float, clock: Clock = time.monotonic) -> None:
        if budget < 0:
            raise ConfigError(f"deadline budget must be >= 0, got {budget}")
        self._clock = clock
        self._budget = budget
        self._expires_at = clock() + budget

    @classmethod
    def unlimited(cls, clock: Clock = time.monotonic) -> "Deadline":
        """A deadline that never expires."""
        return cls(math.inf, clock)

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self._clock() >= self._expires_at

    def check(self) -> None:
        """Raise :class:`~repro.errors.DeadlineExceededError` if expired."""
        if self.expired:
            raise DeadlineExceededError(
                f"deadline exceeded ({self._budget:.1f}s budget spent)"
            )


__all__ = ["CircuitBreaker", "Deadline"]
